"""Architecture specifications and the paper's Table I networks.

A :class:`NetworkSpec` is a *cost-level* description: enough structure to
count weights and forward operations with the paper's formulas, without
allocating any tensors.  Small specs can also be :meth:`NetworkSpec.build`
into runnable :class:`~repro.nn.network.Sequential` networks.

The two Table I entries:

* ``mnist_fc()`` — the five-hidden-layer fully-connected network
  (2500-2000-1500-1000-500) for MNIST; paper lists ``12e6`` parameters
  and ``24e6`` forward computations.
* ``inception_v3()`` — Szegedy et al.'s ImageNet network; paper lists
  ``25e6`` parameters and ``5e9`` forward computations.

LeNet-5, AlexNet and VGG-16 are included for catalog breadth and for
what-if studies in the examples.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Union

import numpy as np

from repro.core.errors import ArchitectureError
from repro.nn import flops
from repro.nn.conv import AvgPool2D, Conv2D, MaxPool2D, conv_output_size
from repro.nn.layers import Affine, Flatten, Layer, ReLU, Sigmoid, Tanh
from repro.nn.network import Sequential

#: Shape of data flowing between spec layers: either flat features or an
#: image volume ``(channels, height, width)``.
Shape = Union[int, tuple[int, int, int]]

_ACTIVATIONS = {"sigmoid": Sigmoid, "tanh": Tanh, "relu": ReLU}


def _as_image(shape: Shape, context: str) -> tuple[int, int, int]:
    if isinstance(shape, int):
        raise ArchitectureError(f"{context} requires an image input, got flat features")
    return shape


def _resolve_padding(padding: int | str, kernel_h: int, kernel_w: int) -> tuple[int, int]:
    if isinstance(padding, int):
        if padding < 0:
            raise ArchitectureError(f"padding must be non-negative, got {padding}")
        return padding, padding
    if padding == "same":
        return (kernel_h - 1) // 2, (kernel_w - 1) // 2
    if padding == "valid":
        return 0, 0
    raise ArchitectureError(f"padding must be an int, 'same' or 'valid', got {padding!r}")


class LayerSpec(ABC):
    """One stage of an architecture, at the cost-counting level."""

    @abstractmethod
    def output_shape(self, input_shape: Shape) -> Shape:
        """Shape produced when applied to ``input_shape``."""

    @abstractmethod
    def weights(self, input_shape: Shape) -> int:
        """Trainable scalar count (the paper's ``W`` contribution)."""

    @abstractmethod
    def forward_operations(self, input_shape: Shape) -> int:
        """Forward cost in the paper's units (see :mod:`repro.nn.flops`)."""

    def forward_madds(self, input_shape: Shape) -> int:
        """Forward cost in uniform multiply-adds.

        Defaults to :meth:`forward_operations`; dense layers override
        because the paper's dense unit counts multiply and add separately.
        """
        return self.forward_operations(input_shape)


@dataclass(frozen=True)
class DenseSpec(LayerSpec):
    """Fully-connected layer (flattens image input implicitly)."""

    units: int
    use_bias: bool = True
    activation: str | None = None

    def __post_init__(self) -> None:
        if self.units < 1:
            raise ArchitectureError(f"units must be >= 1, got {self.units}")
        if self.activation is not None and self.activation not in _ACTIVATIONS:
            raise ArchitectureError(f"unknown activation {self.activation!r}")

    def _in_features(self, input_shape: Shape) -> int:
        if isinstance(input_shape, int):
            return input_shape
        channels, height, width = input_shape
        return channels * height * width

    def output_shape(self, input_shape: Shape) -> Shape:
        return self.units

    def weights(self, input_shape: Shape) -> int:
        return flops.dense_weights(self._in_features(input_shape), self.units, self.use_bias)

    def forward_operations(self, input_shape: Shape) -> int:
        return flops.dense_forward_operations(self._in_features(input_shape), self.units)

    def forward_madds(self, input_shape: Shape) -> int:
        return flops.dense_forward_madds(self._in_features(input_shape), self.units)


@dataclass(frozen=True)
class ConvSpec(LayerSpec):
    """Convolution; kernel may be square (int) or rectangular (pair)."""

    filters: int
    kernel: int | tuple[int, int]
    stride: int = 1
    padding: int | str = 0
    bias_mode: str = "none"
    activation: str | None = "relu"

    def __post_init__(self) -> None:
        if self.filters < 1:
            raise ArchitectureError(f"filters must be >= 1, got {self.filters}")
        if self.stride < 1:
            raise ArchitectureError(f"stride must be >= 1, got {self.stride}")
        if self.activation is not None and self.activation not in _ACTIVATIONS:
            raise ArchitectureError(f"unknown activation {self.activation!r}")

    def _kernel_hw(self) -> tuple[int, int]:
        return (self.kernel, self.kernel) if isinstance(self.kernel, int) else self.kernel

    def _geometry(self, input_shape: Shape) -> tuple[int, int, int, int, int]:
        depth, height, width = _as_image(input_shape, "ConvSpec")
        kernel_h, kernel_w = self._kernel_hw()
        pad_h, pad_w = _resolve_padding(self.padding, kernel_h, kernel_w)
        out_h = conv_output_size(height, kernel_h, self.stride, pad_h)
        out_w = conv_output_size(width, kernel_w, self.stride, pad_w)
        return depth, kernel_h, kernel_w, out_h, out_w

    def output_shape(self, input_shape: Shape) -> Shape:
        _, _, _, out_h, out_w = self._geometry(input_shape)
        return (self.filters, out_h, out_w)

    def weights(self, input_shape: Shape) -> int:
        depth, kernel_h, kernel_w, out_h, out_w = self._geometry(input_shape)
        return flops.conv_weights(
            self.filters, kernel_h, kernel_w, depth, out_h, out_w, self.bias_mode
        )

    def forward_operations(self, input_shape: Shape) -> int:
        depth, kernel_h, kernel_w, out_h, out_w = self._geometry(input_shape)
        return flops.conv_forward_madds(self.filters, kernel_h, kernel_w, depth, out_h, out_w)


@dataclass(frozen=True)
class PoolSpec(LayerSpec):
    """Max/average pooling.  Carries no weights; the paper ignores its cost."""

    kind: str
    size: int
    stride: int | None = None
    padding: int | str = 0

    def __post_init__(self) -> None:
        if self.kind not in ("max", "avg"):
            raise ArchitectureError(f"kind must be 'max' or 'avg', got {self.kind!r}")
        if self.size < 1:
            raise ArchitectureError(f"size must be >= 1, got {self.size}")
        if self.stride is not None and self.stride < 1:
            raise ArchitectureError(f"stride must be >= 1, got {self.stride}")

    def output_shape(self, input_shape: Shape) -> Shape:
        depth, height, width = _as_image(input_shape, "PoolSpec")
        stride = self.stride if self.stride is not None else self.size
        pad_h, pad_w = _resolve_padding(self.padding, self.size, self.size)
        out_h = conv_output_size(height, self.size, stride, pad_h)
        out_w = conv_output_size(width, self.size, stride, pad_w)
        return (depth, out_h, out_w)

    def weights(self, input_shape: Shape) -> int:
        return 0

    def forward_operations(self, input_shape: Shape) -> int:
        return 0


@dataclass(frozen=True)
class FlattenSpec(LayerSpec):
    """Image volume to flat features."""

    def output_shape(self, input_shape: Shape) -> Shape:
        if isinstance(input_shape, int):
            return input_shape
        channels, height, width = input_shape
        return channels * height * width

    def weights(self, input_shape: Shape) -> int:
        return 0

    def forward_operations(self, input_shape: Shape) -> int:
        return 0


@dataclass(frozen=True)
class InceptionModuleSpec(LayerSpec):
    """Parallel branches over the same input, concatenated along channels.

    Each branch is a sequence of layer specs; branches must agree on the
    output's spatial dimensions.  Modules may nest (Inception v3's 8x8
    modules split a branch into two parallel convolutions).
    """

    branches: tuple[tuple[LayerSpec, ...], ...]

    def __post_init__(self) -> None:
        if not self.branches:
            raise ArchitectureError("an inception module needs at least one branch")
        if any(not branch for branch in self.branches):
            raise ArchitectureError("branches must not be empty")

    def _branch_output(self, branch: tuple[LayerSpec, ...], input_shape: Shape) -> Shape:
        shape = input_shape
        for spec in branch:
            shape = spec.output_shape(shape)
        return shape

    def output_shape(self, input_shape: Shape) -> Shape:
        outputs = [self._branch_output(branch, input_shape) for branch in self.branches]
        images = [_as_image(shape, "InceptionModuleSpec branch") for shape in outputs]
        spatial = {(height, width) for _, height, width in images}
        if len(spatial) != 1:
            raise ArchitectureError(
                f"branch spatial dimensions disagree: {sorted(spatial)}"
            )
        height, width = spatial.pop()
        channels = sum(depth for depth, _, _ in images)
        return (channels, height, width)

    def weights(self, input_shape: Shape) -> int:
        total = 0
        for branch in self.branches:
            shape = input_shape
            for spec in branch:
                total += spec.weights(shape)
                shape = spec.output_shape(shape)
        return total

    def forward_operations(self, input_shape: Shape) -> int:
        total = 0
        for branch in self.branches:
            shape = input_shape
            for spec in branch:
                total += spec.forward_operations(shape)
                shape = spec.output_shape(shape)
        return total

    def forward_madds(self, input_shape: Shape) -> int:
        total = 0
        for branch in self.branches:
            shape = input_shape
            for spec in branch:
                total += spec.forward_madds(shape)
                shape = spec.output_shape(shape)
        return total


@dataclass(frozen=True)
class NetworkSpec:
    """A whole architecture: an input shape plus a layer-spec pipeline."""

    name: str
    input_shape: Shape
    layers: tuple[LayerSpec, ...]

    def __post_init__(self) -> None:
        if not self.layers:
            raise ArchitectureError("a network spec needs at least one layer")

    def shapes(self) -> list[Shape]:
        """Shapes flowing through the network, including the input."""
        shapes: list[Shape] = [self.input_shape]
        for spec in self.layers:
            shapes.append(spec.output_shape(shapes[-1]))
        return shapes

    @property
    def output_shape(self) -> Shape:
        """Final output shape."""
        return self.shapes()[-1]

    @property
    def total_weights(self) -> int:
        """The paper's ``W`` for this architecture."""
        total = 0
        shape = self.input_shape
        for spec in self.layers:
            total += spec.weights(shape)
            shape = spec.output_shape(shape)
        return total

    @property
    def forward_operations(self) -> int:
        """Forward-pass cost in the paper's Table I units."""
        total = 0
        shape = self.input_shape
        for spec in self.layers:
            total += spec.forward_operations(shape)
            shape = spec.output_shape(shape)
        return total

    @property
    def forward_madds(self) -> int:
        """Forward-pass cost in uniform multiply-adds."""
        total = 0
        shape = self.input_shape
        for spec in self.layers:
            total += spec.forward_madds(shape)
            shape = spec.output_shape(shape)
        return total

    @property
    def training_operations_per_sample(self) -> float:
        """Per-sample training cost ``C``: 3 forward-equivalents."""
        return flops.training_operations(self.forward_operations)

    def summary(self) -> list[dict[str, object]]:
        """Per-layer table: spec, output shape, weights, operations."""
        rows: list[dict[str, object]] = []
        shape = self.input_shape
        for spec in self.layers:
            rows.append(
                {
                    "layer": type(spec).__name__,
                    "output_shape": spec.output_shape(shape),
                    "weights": spec.weights(shape),
                    "forward_operations": spec.forward_operations(shape),
                }
            )
            shape = spec.output_shape(shape)
        return rows

    def build(self, rng: np.random.Generator | None = None) -> Sequential:
        """Materialise a runnable network (dense/conv/pool/flatten only)."""
        if rng is None:
            rng = np.random.default_rng(0)
        layers: list[Layer] = []
        shape = self.input_shape
        for spec in self.layers:
            layers.extend(_build_layer(spec, shape, rng))
            shape = spec.output_shape(shape)
        return Sequential(layers)


def _build_layer(spec: LayerSpec, input_shape: Shape, rng: np.random.Generator) -> list[Layer]:
    if isinstance(spec, DenseSpec):
        built: list[Layer] = []
        if not isinstance(input_shape, int):
            built.append(Flatten())
        in_features = spec._in_features(input_shape)
        built.append(Affine(in_features, spec.units, rng=rng, use_bias=spec.use_bias))
        if spec.activation is not None:
            built.append(_ACTIVATIONS[spec.activation]())
        return built
    if isinstance(spec, ConvSpec):
        depth, _, _ = _as_image(input_shape, "ConvSpec.build")
        kernel_h, kernel_w = spec._kernel_hw()
        pad_h, pad_w = _resolve_padding(spec.padding, kernel_h, kernel_w)
        if pad_h != pad_w:
            raise ArchitectureError("runnable Conv2D supports square padding only")
        built = [
            Conv2D(
                depth,
                spec.filters,
                (kernel_h, kernel_w),
                stride=spec.stride,
                padding=pad_h,
                rng=rng,
                use_bias=spec.bias_mode == "per_filter",
            )
        ]
        if spec.activation is not None:
            built.append(_ACTIVATIONS[spec.activation]())
        return built
    if isinstance(spec, PoolSpec):
        pad_h, pad_w = _resolve_padding(spec.padding, spec.size, spec.size)
        if pad_h != pad_w:
            raise ArchitectureError("runnable pooling supports square padding only")
        pool_cls = MaxPool2D if spec.kind == "max" else AvgPool2D
        return [pool_cls(spec.size, stride=spec.stride, padding=pad_h)]
    if isinstance(spec, FlattenSpec):
        return [Flatten()]
    raise ArchitectureError(f"{type(spec).__name__} cannot be built into a runnable layer")


# ---------------------------------------------------------------------------
# Table I and catalog architectures.
# ---------------------------------------------------------------------------


def mnist_fc() -> NetworkSpec:
    """The paper's fully-connected MNIST network (Table I, row 1).

    Five hidden layers of 2500, 2000, 1500, 1000 and 500 sigmoid units,
    784 inputs, 10 outputs (Ciresan et al.'s "deep big simple" net).
    """
    hidden = (2500, 2000, 1500, 1000, 500)
    layers = [DenseSpec(units, activation="sigmoid") for units in hidden]
    layers.append(DenseSpec(10, activation=None))
    return NetworkSpec(name="Fully connected (MNIST)", input_shape=784, layers=tuple(layers))


def lenet5() -> NetworkSpec:
    """LeNet-5 adapted to 28x28 inputs — small enough to train in tests."""
    return NetworkSpec(
        name="LeNet-5 (MNIST)",
        input_shape=(1, 28, 28),
        layers=(
            ConvSpec(6, 5, padding=2, activation="tanh", bias_mode="per_filter"),
            PoolSpec("max", 2),
            ConvSpec(16, 5, activation="tanh", bias_mode="per_filter"),
            PoolSpec("max", 2),
            DenseSpec(120, activation="tanh"),
            DenseSpec(84, activation="tanh"),
            DenseSpec(10, activation=None),
        ),
    )


def alexnet() -> NetworkSpec:
    """AlexNet (single-tower variant), for catalog breadth."""
    return NetworkSpec(
        name="AlexNet (ImageNet)",
        input_shape=(3, 227, 227),
        layers=(
            ConvSpec(96, 11, stride=4),
            PoolSpec("max", 3, stride=2),
            ConvSpec(256, 5, padding=2),
            PoolSpec("max", 3, stride=2),
            ConvSpec(384, 3, padding=1),
            ConvSpec(384, 3, padding=1),
            ConvSpec(256, 3, padding=1),
            PoolSpec("max", 3, stride=2),
            DenseSpec(4096),
            DenseSpec(4096),
            DenseSpec(1000, activation=None),
        ),
    )


def vgg16() -> NetworkSpec:
    """VGG-16, for catalog breadth."""

    def block(filters: int, convs: int) -> list[LayerSpec]:
        return [ConvSpec(filters, 3, padding=1) for _ in range(convs)] + [PoolSpec("max", 2)]

    layers: list[LayerSpec] = []
    for filters, convs in ((64, 2), (128, 2), (256, 3), (512, 3), (512, 3)):
        layers.extend(block(filters, convs))
    layers.extend([DenseSpec(4096), DenseSpec(4096), DenseSpec(1000, activation=None)])
    return NetworkSpec(name="VGG-16 (ImageNet)", input_shape=(3, 224, 224), layers=tuple(layers))


def _googlenet_module(
    conv1: int, reduce3: int, conv3: int, reduce5: int, conv5: int, pool_proj: int
) -> InceptionModuleSpec:
    """The original (v1) Inception module of Szegedy et al. 2014."""
    return InceptionModuleSpec(
        branches=(
            (ConvSpec(conv1, 1),),
            (ConvSpec(reduce3, 1), ConvSpec(conv3, 3, padding="same")),
            (ConvSpec(reduce5, 1), ConvSpec(conv5, 5, padding="same")),
            (PoolSpec("max", 3, stride=1, padding="same"), ConvSpec(pool_proj, 1)),
        )
    )


def googlenet() -> NetworkSpec:
    """GoogLeNet / Inception v1 (~6M conv weights, ~1.5G madds forward).

    The first inception architecture, included as a further cross-check
    of the branch/concat counting machinery; channel configuration from
    Szegedy et al. (2014), Table 1.  Our pooling uses floor division
    (the paper's ``c = (l-k+b)/s + 1``), so intermediate spatial sizes
    run one pixel below the original's ceil-mode pooling — weights are
    unaffected and the computation count shifts by a few percent.
    """
    modules = (
        (64, 96, 128, 16, 32, 32),      # 3a
        (128, 128, 192, 32, 96, 64),    # 3b
        "pool",
        (192, 96, 208, 16, 48, 64),     # 4a
        (160, 112, 224, 24, 64, 64),    # 4b
        (128, 128, 256, 24, 64, 64),    # 4c
        (112, 144, 288, 32, 64, 64),    # 4d
        (256, 160, 320, 32, 128, 128),  # 4e
        "pool",
        (256, 160, 320, 32, 128, 128),  # 5a
        (384, 192, 384, 48, 128, 128),  # 5b
    )
    layers: list[LayerSpec] = [
        ConvSpec(64, 7, stride=2, padding=3),
        PoolSpec("max", 3, stride=2),
        ConvSpec(64, 1),
        ConvSpec(192, 3, padding="same"),
        PoolSpec("max", 3, stride=2),
    ]
    for module in modules:
        if module == "pool":
            layers.append(PoolSpec("max", 3, stride=2))
        else:
            layers.append(_googlenet_module(*module))
    # Global average pool over whatever spatial size floor-pooling left.
    shape = (3, 224, 224)
    for spec in layers:
        shape = spec.output_shape(shape)
    layers.append(PoolSpec("avg", shape[1]))
    layers.append(FlattenSpec())
    layers.append(DenseSpec(1000, activation=None))
    return NetworkSpec(
        name="GoogLeNet / Inception v.1 (ImageNet)",
        input_shape=(3, 224, 224),
        layers=tuple(layers),
    )


def _inception_35(pool_projection: int) -> InceptionModuleSpec:
    """35x35 module (figure 5 of Szegedy et al.)."""
    return InceptionModuleSpec(
        branches=(
            (ConvSpec(64, 1),),
            (ConvSpec(48, 1), ConvSpec(64, 5, padding="same")),
            (ConvSpec(64, 1), ConvSpec(96, 3, padding="same"), ConvSpec(96, 3, padding="same")),
            (PoolSpec("avg", 3, stride=1, padding="same"), ConvSpec(pool_projection, 1)),
        )
    )


def _inception_reduction_6a() -> InceptionModuleSpec:
    """35x35 -> 17x17 grid reduction."""
    return InceptionModuleSpec(
        branches=(
            (ConvSpec(384, 3, stride=2),),
            (ConvSpec(64, 1), ConvSpec(96, 3, padding="same"), ConvSpec(96, 3, stride=2)),
            (PoolSpec("max", 3, stride=2),),
        )
    )


def _inception_17(mid_channels: int) -> InceptionModuleSpec:
    """17x17 factorised-7x7 module (figure 6 of Szegedy et al.)."""
    mid = mid_channels
    return InceptionModuleSpec(
        branches=(
            (ConvSpec(192, 1),),
            (
                ConvSpec(mid, 1),
                ConvSpec(mid, (1, 7), padding="same"),
                ConvSpec(192, (7, 1), padding="same"),
            ),
            (
                ConvSpec(mid, 1),
                ConvSpec(mid, (7, 1), padding="same"),
                ConvSpec(mid, (1, 7), padding="same"),
                ConvSpec(mid, (7, 1), padding="same"),
                ConvSpec(192, (1, 7), padding="same"),
            ),
            (PoolSpec("avg", 3, stride=1, padding="same"), ConvSpec(192, 1)),
        )
    )


def _inception_reduction_7a() -> InceptionModuleSpec:
    """17x17 -> 8x8 grid reduction."""
    return InceptionModuleSpec(
        branches=(
            (ConvSpec(192, 1), ConvSpec(320, 3, stride=2)),
            (
                ConvSpec(192, 1),
                ConvSpec(192, (1, 7), padding="same"),
                ConvSpec(192, (7, 1), padding="same"),
                ConvSpec(192, 3, stride=2),
            ),
            (PoolSpec("max", 3, stride=2),),
        )
    )


def _inception_8() -> InceptionModuleSpec:
    """8x8 expanded-filter-bank module (figure 7 of Szegedy et al.)."""
    split = InceptionModuleSpec(
        branches=(
            (ConvSpec(384, (1, 3), padding="same"),),
            (ConvSpec(384, (3, 1), padding="same"),),
        )
    )
    return InceptionModuleSpec(
        branches=(
            (ConvSpec(320, 1),),
            (ConvSpec(384, 1), split),
            (ConvSpec(448, 1), ConvSpec(384, 3, padding="same"), split),
            (PoolSpec("avg", 3, stride=1, padding="same"), ConvSpec(192, 1)),
        )
    )


def inception_v3() -> NetworkSpec:
    """Inception v3 (Table I, row 2): ~24e6 weights, ~5e9 forward madds.

    Channel counts follow Szegedy et al. (2015) / TF-slim.  The paper
    rounds the published figures to ``25e6`` parameters and ``5e9``
    computations; the spec reproduces them within a few percent (exact
    values are asserted in the test-suite and reported by the Table I
    bench).
    """
    return NetworkSpec(
        name="Inception v.3 (ImageNet)",
        input_shape=(3, 299, 299),
        layers=(
            ConvSpec(32, 3, stride=2),
            ConvSpec(32, 3),
            ConvSpec(64, 3, padding="same"),
            PoolSpec("max", 3, stride=2),
            ConvSpec(80, 1),
            ConvSpec(192, 3),
            PoolSpec("max", 3, stride=2),
            _inception_35(pool_projection=32),
            _inception_35(pool_projection=64),
            _inception_35(pool_projection=64),
            _inception_reduction_6a(),
            _inception_17(128),
            _inception_17(160),
            _inception_17(160),
            _inception_17(192),
            _inception_reduction_7a(),
            _inception_8(),
            _inception_8(),
            PoolSpec("avg", 8),
            FlattenSpec(),
            DenseSpec(1000, activation=None),
        ),
    )


#: All architectures by slug, for the CLI and the examples.
ARCHITECTURES = {
    "mnist-fc": mnist_fc,
    "lenet5": lenet5,
    "alexnet": alexnet,
    "vgg16": vgg16,
    "googlenet": googlenet,
    "inception-v3": inception_v3,
}
