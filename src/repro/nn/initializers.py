"""Weight initialisers for the neural-network substrate."""

from __future__ import annotations

import numpy as np

from repro.core.errors import ArchitectureError


def zeros(shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """All-zero tensor (used for biases)."""
    return np.zeros(shape, dtype=np.float64)


def xavier_uniform(shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """Glorot/Xavier uniform: scale keeps activation variance stable.

    ``fan_in``/``fan_out`` are taken from the first/second axes (dense) or
    computed from receptive fields (convolutions, where shape is
    ``(out_channels, in_channels, kh, kw)``).
    """
    fan_in, fan_out = _fans(shape)
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=shape)


def he_normal(shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """He initialisation, appropriate for ReLU networks."""
    fan_in, _ = _fans(shape)
    return rng.normal(0.0, np.sqrt(2.0 / fan_in), size=shape)


def _fans(shape: tuple[int, ...]) -> tuple[int, int]:
    if len(shape) == 2:
        return shape[0], shape[1]
    if len(shape) == 4:
        out_channels, in_channels, kernel_h, kernel_w = shape
        receptive = kernel_h * kernel_w
        return in_channels * receptive, out_channels * receptive
    raise ArchitectureError(f"cannot infer fans for weight shape {shape}")
