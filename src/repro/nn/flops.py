"""Cost counting for neural networks (Section V-A of the paper).

The paper derives per-layer weight and computation counts and checks them
against the architectures' original publications (its Table I):

* Fully connected layer: ``w = n_i * m_i`` weights; each training step has
  "two matrix multiplications per network layer, ``2 * n_i * m_i``"
  operations, so a forward pass costs ``2 * W`` and a full training step
  (forward, error back-propagation, gradient) costs ``6 * W``.
* Convolutional layer: forward cost ``n * (k * k * d * c * c)``
  multiply-adds with ``c = (l - k + b)/s + 1`` (integer division, ``b``
  the border/padding); weights ``n * (k * k * d)`` with an optional
  ``c * c`` per-feature-map bias that the paper notes is uncommon.

Note the unit asymmetry is the paper's own: the dense count (``2 n m``)
counts multiply and add separately, while the conv count is in
multiply-adds.  Both are reproduced verbatim so that Table I matches;
the physically uniform multiply-add counts are also provided.
"""

from __future__ import annotations

from repro.core.errors import ArchitectureError
from repro.nn.conv import conv_output_size

#: Paper constant: training one sample on a fully-connected net costs 6W.
DENSE_TRAINING_OPERATIONS_PER_WEIGHT = 6

#: Paper constant: a full training step costs 3 forward-equivalents
#: (forward pass, error back-propagation, gradient computation).
TRAINING_PASSES = 3


def dense_weights(in_features: int, out_features: int, use_bias: bool = True) -> int:
    """Weight count of a fully-connected layer."""
    if in_features < 1 or out_features < 1:
        raise ArchitectureError(
            f"feature counts must be >= 1, got {in_features} -> {out_features}"
        )
    bias = out_features if use_bias else 0
    return in_features * out_features + bias


def dense_forward_operations(in_features: int, out_features: int) -> int:
    """Forward cost in the paper's units: ``2 * n_i * m_i`` per layer."""
    if in_features < 1 or out_features < 1:
        raise ArchitectureError(
            f"feature counts must be >= 1, got {in_features} -> {out_features}"
        )
    return 2 * in_features * out_features


def dense_forward_madds(in_features: int, out_features: int) -> int:
    """Forward cost in multiply-adds (one per weight application)."""
    if in_features < 1 or out_features < 1:
        raise ArchitectureError(
            f"feature counts must be >= 1, got {in_features} -> {out_features}"
        )
    return in_features * out_features


def conv_weights(
    feature_maps: int,
    kernel_h: int,
    kernel_w: int,
    input_depth: int,
    output_h: int = 0,
    output_w: int = 0,
    bias_mode: str = "none",
) -> int:
    """Weight count of a convolutional layer.

    ``bias_mode``:

    * ``"none"`` — the paper's default ("bias is not commonly used").
    * ``"per_filter"`` — one bias per feature map (the modern convention).
    * ``"per_pixel"`` — the paper's formula ``n * (k*k*d + c*c)``: a bias
      per output position per feature map.  Requires output dims.
    """
    if min(feature_maps, kernel_h, kernel_w, input_depth) < 1:
        raise ArchitectureError("convolution dimensions must be >= 1")
    kernel_weights = feature_maps * kernel_h * kernel_w * input_depth
    if bias_mode == "none":
        return kernel_weights
    if bias_mode == "per_filter":
        return kernel_weights + feature_maps
    if bias_mode == "per_pixel":
        if output_h < 1 or output_w < 1:
            raise ArchitectureError("per_pixel bias needs output dimensions")
        return kernel_weights + feature_maps * output_h * output_w
    raise ArchitectureError(f"unknown bias_mode {bias_mode!r}")


def conv_forward_madds(
    feature_maps: int,
    kernel_h: int,
    kernel_w: int,
    input_depth: int,
    output_h: int,
    output_w: int,
) -> int:
    """The paper's conv cost: ``n * (k * k * d * c * c)`` multiply-adds."""
    if min(feature_maps, kernel_h, kernel_w, input_depth, output_h, output_w) < 1:
        raise ArchitectureError("convolution dimensions must be >= 1")
    return feature_maps * kernel_h * kernel_w * input_depth * output_h * output_w


def training_operations(forward_operations: float) -> float:
    """Full training-step cost from a forward cost: 3 forward-equivalents.

    For a fully-connected network with forward cost ``2W`` this gives the
    paper's ``6W``; for Inception v3's ``5e9`` forward it gives the
    ``C = 3 * 5e9`` used in Figure 3.
    """
    if forward_operations < 0:
        raise ArchitectureError(
            f"forward_operations must be non-negative, got {forward_operations}"
        )
    return TRAINING_PASSES * forward_operations


__all__ = [
    "DENSE_TRAINING_OPERATIONS_PER_WEIGHT",
    "TRAINING_PASSES",
    "conv_forward_madds",
    "conv_output_size",
    "conv_weights",
    "dense_forward_madds",
    "dense_forward_operations",
    "dense_weights",
    "training_operations",
]
