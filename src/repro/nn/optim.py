"""Optimisers: the gradient-descent variants of Section IV-A.

* :class:`GradientDescent` — batch GD: the whole training set per step
  (what Spark ML used in the paper's Figure 2 experiments).
* :class:`MiniBatchSGD` — a random mini-batch per step (the weak-scaling
  regime of Figure 3: each worker holds a fixed batch of 128).
* :class:`Momentum` — classical momentum, a common extension.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Sequence

import numpy as np

from repro.core.errors import TrainingError


class Optimizer(ABC):
    """Updates parameters in place from gradients."""

    @abstractmethod
    def step(self, parameters: Sequence[np.ndarray], gradients: Sequence[np.ndarray]) -> None:
        """Apply one update."""


class GradientDescent(Optimizer):
    """Vanilla update: ``theta -= lr * grad``."""

    def __init__(self, learning_rate: float):
        if learning_rate <= 0:
            raise TrainingError(f"learning_rate must be positive, got {learning_rate}")
        self.learning_rate = learning_rate

    def step(self, parameters: Sequence[np.ndarray], gradients: Sequence[np.ndarray]) -> None:
        if len(parameters) != len(gradients):
            raise TrainingError(
                f"{len(parameters)} parameters but {len(gradients)} gradients"
            )
        for param, grad in zip(parameters, gradients):
            param -= self.learning_rate * grad


class Momentum(Optimizer):
    """Momentum update: ``v = mu*v - lr*grad; theta += v``."""

    def __init__(self, learning_rate: float, momentum: float = 0.9):
        if learning_rate <= 0:
            raise TrainingError(f"learning_rate must be positive, got {learning_rate}")
        if not 0.0 <= momentum < 1.0:
            raise TrainingError(f"momentum must be in [0, 1), got {momentum}")
        self.learning_rate = learning_rate
        self.momentum = momentum
        self._velocity: list[np.ndarray] | None = None

    def step(self, parameters: Sequence[np.ndarray], gradients: Sequence[np.ndarray]) -> None:
        if len(parameters) != len(gradients):
            raise TrainingError(
                f"{len(parameters)} parameters but {len(gradients)} gradients"
            )
        if self._velocity is None:
            self._velocity = [np.zeros_like(p) for p in parameters]
        if len(self._velocity) != len(parameters):
            raise TrainingError("parameter structure changed between steps")
        for velocity, param, grad in zip(self._velocity, parameters, gradients):
            velocity *= self.momentum
            velocity -= self.learning_rate * grad
            param += velocity


class MiniBatchSGD(GradientDescent):
    """SGD with client-side batch sampling.

    The update rule is plain gradient descent; :meth:`sample_batch` draws
    the random mini-batch (Section IV-A: "mini-batch SGD uses a random
    mini-batch of examples").
    """

    def __init__(self, learning_rate: float, batch_size: int, rng: np.random.Generator):
        super().__init__(learning_rate)
        if batch_size < 1:
            raise TrainingError(f"batch_size must be >= 1, got {batch_size}")
        self.batch_size = batch_size
        self.rng = rng

    def sample_batch(self, inputs: np.ndarray, targets: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Draw one mini-batch (without replacement when possible)."""
        if inputs.shape[0] != targets.shape[0]:
            raise TrainingError(
                f"{inputs.shape[0]} inputs but {targets.shape[0]} targets"
            )
        population = inputs.shape[0]
        if population == 0:
            raise TrainingError("cannot sample from an empty dataset")
        replace = self.batch_size > population
        indices = self.rng.choice(population, size=self.batch_size, replace=replace)
        return inputs[indices], targets[indices]
