"""Sequential networks: composition of layers with end-to-end backprop."""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.core.errors import ArchitectureError
from repro.nn.layers import Layer
from repro.nn.losses import Loss


class Sequential:
    """A feed-forward stack of layers."""

    def __init__(self, layers: Sequence[Layer]):
        if not layers:
            raise ArchitectureError("a network needs at least one layer")
        self.layers = list(layers)

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        """Run the batch through every layer."""
        output = inputs
        for layer in self.layers:
            output = layer.forward(output)
        return output

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        """Back-propagate through every layer (reverse order)."""
        grad = grad_output
        for layer in reversed(self.layers):
            grad = layer.backward(grad)
        return grad

    def parameters(self) -> list[np.ndarray]:
        """All trainable tensors, in layer order."""
        params: list[np.ndarray] = []
        for layer in self.layers:
            params.extend(layer.parameters())
        return params

    def gradients(self) -> list[np.ndarray]:
        """All gradients, matching :meth:`parameters` order."""
        grads: list[np.ndarray] = []
        for layer in self.layers:
            grads.extend(layer.gradients())
        return grads

    @property
    def weight_count(self) -> int:
        """Total trainable scalars — the paper's ``W``."""
        return int(sum(layer.weight_count for layer in self.layers))

    def loss_and_gradients(
        self, inputs: np.ndarray, targets: np.ndarray, loss: Loss
    ) -> tuple[float, list[np.ndarray]]:
        """One full forward + backward pass; returns (loss, gradients).

        This is the unit of work the paper's gradient-descent model costs
        out: forward pass, error back-propagation, gradient computation.
        """
        predictions = self.forward(inputs)
        value = loss.forward(predictions, targets)
        self.backward(loss.backward())
        return value, self.gradients()

    def predict_classes(self, inputs: np.ndarray) -> np.ndarray:
        """Argmax class indices for a batch."""
        return np.argmax(self.forward(inputs), axis=1)

    def get_flat_parameters(self) -> np.ndarray:
        """All parameters concatenated into one vector (for distribution)."""
        params = self.parameters()
        if not params:
            return np.empty(0)
        return np.concatenate([p.ravel() for p in params])

    def set_flat_parameters(self, flat: np.ndarray) -> None:
        """Load parameters from one vector (inverse of get_flat_parameters)."""
        params = self.parameters()
        expected = sum(p.size for p in params)
        if flat.size != expected:
            raise ArchitectureError(f"expected {expected} parameters, got {flat.size}")
        offset = 0
        for param in params:
            chunk = flat[offset : offset + param.size]
            param[...] = chunk.reshape(param.shape)
            offset += param.size
