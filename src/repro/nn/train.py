"""Single-node training loop (the distributed loop lives in repro.distributed)."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.errors import TrainingError
from repro.nn.losses import Loss
from repro.nn.network import Sequential
from repro.nn.optim import MiniBatchSGD, Optimizer


@dataclass
class TrainingHistory:
    """Loss per step plus convergence bookkeeping."""

    losses: list[float] = field(default_factory=list)
    converged: bool = False
    steps: int = 0

    @property
    def final_loss(self) -> float:
        """Loss after the last step."""
        if not self.losses:
            raise TrainingError("no training steps recorded")
        return self.losses[-1]


def train(
    network: Sequential,
    inputs: np.ndarray,
    targets: np.ndarray,
    loss: Loss,
    optimizer: Optimizer,
    steps: int,
    convergence_delta: float | None = None,
) -> TrainingHistory:
    """Run up to ``steps`` optimisation steps.

    Batch optimisers see the full dataset each step;
    :class:`~repro.nn.optim.MiniBatchSGD` samples its own batches.  If
    ``convergence_delta`` is given, training stops early once the loss
    improves by less than that amount between steps (the paper's
    "iterations are repeated until the parameter values converge").
    """
    if steps < 1:
        raise TrainingError(f"steps must be >= 1, got {steps}")
    if inputs.shape[0] != targets.shape[0]:
        raise TrainingError(f"{inputs.shape[0]} inputs but {targets.shape[0]} targets")
    if np.isnan(inputs).any() or np.isnan(targets).any():
        raise TrainingError("training data contains NaNs")

    history = TrainingHistory()
    previous_loss: float | None = None
    for _step in range(steps):
        if isinstance(optimizer, MiniBatchSGD):
            batch_inputs, batch_targets = optimizer.sample_batch(inputs, targets)
        else:
            batch_inputs, batch_targets = inputs, targets
        value, gradients = network.loss_and_gradients(batch_inputs, batch_targets, loss)
        if not np.isfinite(value):
            raise TrainingError(f"training diverged: loss became {value}")
        optimizer.step(network.parameters(), gradients)
        history.losses.append(value)
        history.steps += 1
        if (
            convergence_delta is not None
            and previous_loss is not None
            and abs(previous_loss - value) < convergence_delta
        ):
            history.converged = True
            break
        previous_loss = value
    return history


def accuracy(network: Sequential, inputs: np.ndarray, labels: np.ndarray) -> float:
    """Classification accuracy against integer labels."""
    if inputs.shape[0] != labels.shape[0]:
        raise TrainingError(f"{inputs.shape[0]} inputs but {labels.shape[0]} labels")
    if inputs.shape[0] == 0:
        raise TrainingError("cannot compute accuracy on an empty set")
    predictions = network.predict_classes(inputs)
    return float(np.mean(predictions == labels))
