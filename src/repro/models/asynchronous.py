"""Asynchronous gradient descent — the paper's first future-work item.

Section VI: "we consider building a model for asynchronous algorithms,
such as asynchronous gradient descent [Hogwild/Downpour]".  This module
provides that model under the same framework discipline (hardware
constants only, no profiling):

Workers loop independently against a parameter server: pull parameters
(``32W/B``), compute a mini-batch gradient (``C*S/F``), push the update
(``32W/B``).  There is no barrier, so the system's update throughput is
capped by two resources:

* the workers themselves: ``n / cycle_time`` updates per second, and
* the server's link: one push + one pull per update must cross it, so
  at most ``B / (2 * 32W)`` updates per second.

Asynchrony buys barrier-free throughput but pays *staleness*: with
``n`` workers a gradient is, on average, ``n - 1`` updates old when
applied, which slows convergence.  :meth:`AsyncSGDModel.effective_time`
folds in the standard ``1 / (1 + gamma * staleness)`` statistical
efficiency, connecting to :mod:`repro.models.convergence`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.complexity import (
    AmortizedCost,
    CostTerm,
    FixedCost,
    MaxCost,
    NamedCost,
)
from repro.core.errors import ModelError
from repro.core.model import ScalabilityModel


@dataclass(frozen=True)
class AsyncSGDModel(ScalabilityModel):
    """Throughput model of asynchronous SGD with a parameter server.

    ``time(n)`` is the time to process one training instance (the weak
    scaling metric of Figure 3, enabling direct comparison against
    synchronous mini-batch SGD).
    """

    operations_per_sample: float
    batch_size: float
    flops: float
    parameters: float
    bandwidth_bps: float
    bits_per_parameter: int = 32
    server_links: int = 1
    staleness_penalty: float = 0.0

    def __post_init__(self) -> None:
        if self.operations_per_sample <= 0:
            raise ModelError(
                f"operations_per_sample must be positive, got {self.operations_per_sample}"
            )
        if self.batch_size <= 0:
            raise ModelError(f"batch_size must be positive, got {self.batch_size}")
        if self.flops <= 0:
            raise ModelError(f"flops must be positive, got {self.flops}")
        if self.parameters <= 0:
            raise ModelError(f"parameters must be positive, got {self.parameters}")
        if self.bandwidth_bps <= 0:
            raise ModelError(f"bandwidth_bps must be positive, got {self.bandwidth_bps}")
        if self.bits_per_parameter <= 0:
            raise ModelError(
                f"bits_per_parameter must be positive, got {self.bits_per_parameter}"
            )
        if self.server_links < 1:
            raise ModelError(f"server_links must be >= 1, got {self.server_links}")
        if self.staleness_penalty < 0:
            raise ModelError(
                f"staleness_penalty must be non-negative, got {self.staleness_penalty}"
            )

    def _transfer_seconds(self) -> float:
        return self.bits_per_parameter * self.parameters / self.bandwidth_bps

    def worker_cycle_seconds(self) -> float:
        """One worker's pull + compute + push time (uncontended)."""
        compute = self.operations_per_sample * self.batch_size / self.flops
        return compute + 2.0 * self._transfer_seconds()

    def server_seconds_per_update(self) -> float:
        """Server-link occupancy per applied update."""
        return 2.0 * self._transfer_seconds() / self.server_links

    def updates_per_second(self, workers: int) -> float:
        """System throughput: worker-bound early, server-bound at scale."""
        if workers < 1:
            raise ModelError(f"workers must be >= 1, got {workers}")
        worker_bound = workers / self.worker_cycle_seconds()
        server_bound = 1.0 / self.server_seconds_per_update()
        return min(worker_bound, server_bound)

    @property
    def saturation_workers(self) -> float:
        """Worker count at which the server link saturates."""
        return self.worker_cycle_seconds() / self.server_seconds_per_update()

    def cost(self) -> CostTerm:
        """Per-instance time: the slower of the two throughput bounds.

        ``1 / (min(worker_bound, server_bound) * S)`` is the max of the
        two per-instance times — a :class:`MaxCost` of an amortized
        worker-cycle term and a constant server-occupancy floor.
        """
        per_batch_cycle = FixedCost(self.worker_cycle_seconds() / self.batch_size)
        server_floor = FixedCost(
            self.server_seconds_per_update() / self.batch_size
        )
        return NamedCost(
            "throughput",
            MaxCost(
                (
                    NamedCost("worker-bound", AmortizedCost(per_batch_cycle)),
                    NamedCost("server-bound", server_floor),
                )
            ),
        )

    def mean_staleness(self, workers: int) -> float:
        """Average updates applied between a worker's pull and its push.

        The classical result for homogeneous asynchronous workers: a
        gradient is on average ``n - 1`` updates stale.
        """
        if workers < 1:
            raise ModelError(f"workers must be >= 1, got {workers}")
        return float(workers - 1)

    def statistical_efficiency(self, workers: int) -> float:
        """Fraction of a fresh gradient's progress a stale one makes.

        ``1 / (1 + gamma * staleness)``: at ``gamma = 0`` asynchrony is
        statistically free (the Hogwild sparse-conflict regime); larger
        ``gamma`` models dense conflicting updates.
        """
        return 1.0 / (1.0 + self.staleness_penalty * self.mean_staleness(workers))

    def effective_time(self, workers: int) -> float:
        """Seconds per *effective* (fresh-equivalent) training instance."""
        return self.time(workers) / self.statistical_efficiency(workers)

    def effective_speedup(self, workers: int, baseline_workers: int = 1) -> float:
        """Speedup in effective instances — the convergence-aware metric."""
        return self.effective_time(baseline_workers) / self.effective_time(workers)
