"""Parallelization-convergence trade-offs — the paper's second future-work item.

Section VI: "gradient descent parallelization techniques pay for
parallelism with algorithmically slower convergence".  The throughput
speedups of Figures 2-3 count *instances per second*; what a
practitioner ultimately buys is *time to accuracy*, and growing the
effective batch (weak scaling) inflates the number of iterations needed.

We model the inflation with the critical-batch-size rule that later
large-batch studies made standard: to reach a fixed target loss,

    iterations(B) = I_inf * (1 + B_crit / B)

so iterations fall as the batch grows, but saturate at ``I_inf`` once
``B >> B_crit`` — past that point extra parallelism buys no fewer
iterations, only more expensive ones.  :class:`TimeToAccuracyModel`
combines this with any per-iteration throughput model, yielding the
convergence-aware speedup; :func:`measure_iterations_to_target` runs
*real* mini-batch SGD on the NN substrate to exhibit (and calibrate)
the effect.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

import numpy as np

from repro.core.errors import ModelError, TrainingError
from repro.nn.data import Dataset
from repro.nn.losses import Loss
from repro.nn.network import Sequential
from repro.nn.optim import MiniBatchSGD


@dataclass(frozen=True)
class CriticalBatchRule:
    """``iterations(B) = I_inf * (1 + B_crit / B)``.

    ``B_crit`` is the batch size at which iteration count is within 2x
    of its floor ``I_inf``; well below it, doubling the batch halves the
    iterations (perfect scaling), well above it nothing improves.
    """

    iterations_floor: float
    critical_batch: float

    def __post_init__(self) -> None:
        if self.iterations_floor <= 0:
            raise ModelError(f"iterations_floor must be positive, got {self.iterations_floor}")
        if self.critical_batch <= 0:
            raise ModelError(f"critical_batch must be positive, got {self.critical_batch}")

    def iterations(self, batch_size: float) -> float:
        """Iterations to reach the target at this effective batch size."""
        if batch_size <= 0:
            raise ModelError(f"batch_size must be positive, got {batch_size}")
        return self.iterations_floor * (1.0 + self.critical_batch / batch_size)

    def inflation(self, batch_size: float, baseline_batch: float) -> float:
        """Iteration-count ratio vs a baseline batch (>= ~1 when growing)."""
        return self.iterations(batch_size) / self.iterations(baseline_batch)


@dataclass(frozen=True)
class TimeToAccuracyModel:
    """Convergence-aware scaling: superstep time x iterations to target.

    ``superstep_time`` maps a worker count to one iteration's wall time;
    ``batch_for_workers`` gives the effective batch at that worker count
    (weak scaling: ``S * n``).  ``time(n)`` is then the wall time to
    reach the target accuracy, the metric that actually matters.
    """

    superstep_time: Callable[[int], float]
    batch_for_workers: Callable[[int], float]
    rule: CriticalBatchRule

    def time(self, workers: int) -> float:
        """Wall-clock seconds to reach the target accuracy."""
        if workers < 1:
            raise ModelError(f"workers must be >= 1, got {workers}")
        batch = float(self.batch_for_workers(workers))
        return self.superstep_time(workers) * self.rule.iterations(batch)

    def speedup(self, workers: int, baseline_workers: int = 1) -> float:
        """Time-to-accuracy speedup — always <= the throughput speedup."""
        return self.time(baseline_workers) / self.time(workers)

    def throughput_speedup(self, workers: int, baseline_workers: int = 1) -> float:
        """Instances-per-second speedup (what Figures 2-3 plot)."""
        per_instance = lambda n: self.superstep_time(n) / self.batch_for_workers(n)
        return per_instance(baseline_workers) / per_instance(workers)


def fit_critical_batch(
    batch_sizes: np.ndarray, iterations: np.ndarray
) -> CriticalBatchRule:
    """Least-squares fit of the critical-batch rule to measured runs.

    Linear in ``(1, 1/B)``: ``iterations = I_inf + (I_inf * B_crit)/B``.
    """
    batch_arr = np.asarray(batch_sizes, dtype=float)
    iter_arr = np.asarray(iterations, dtype=float)
    if batch_arr.ndim != 1 or batch_arr.size != iter_arr.size or batch_arr.size < 2:
        raise ModelError("need matching vectors of at least 2 (batch, iterations) points")
    if np.any(batch_arr <= 0) or np.any(iter_arr <= 0):
        raise ModelError("batch sizes and iteration counts must be positive")
    features = np.column_stack([np.ones_like(batch_arr), 1.0 / batch_arr])
    (floor, slope), *_ = np.linalg.lstsq(features, iter_arr, rcond=None)
    if floor <= 0 or slope <= 0:
        raise ModelError(
            "measured iterations do not follow a critical-batch law"
            f" (fitted floor={floor:.3g}, slope={slope:.3g})"
        )
    return CriticalBatchRule(iterations_floor=float(floor), critical_batch=float(slope / floor))


def measure_iterations_to_target(
    network_factory: Callable[[], Sequential],
    dataset: Dataset,
    loss: Loss,
    batch_sizes: list[int],
    target_loss: float,
    learning_rate: float = 0.1,
    max_steps: int = 5000,
    seed: int = 0,
    check_every: int = 1,
) -> dict[int, int]:
    """Real mini-batch SGD runs: steps needed to reach ``target_loss``.

    A fresh, identically initialised network is trained per batch size;
    the returned map is the empirical iterations-vs-batch curve that
    :func:`fit_critical_batch` consumes.  Progress is evaluated on the
    full dataset every ``check_every`` steps.  Raises if a run never
    reaches the target (an honest signal the target is too ambitious).
    """
    if not batch_sizes:
        raise TrainingError("need at least one batch size")
    if check_every < 1:
        raise TrainingError(f"check_every must be >= 1, got {check_every}")
    results: dict[int, int] = {}
    for batch_size in batch_sizes:
        network = network_factory()
        optimizer = MiniBatchSGD(
            learning_rate, batch_size, rng=np.random.default_rng(seed)
        )
        steps_taken = None
        for step in range(1, max_steps + 1):
            inputs, targets = optimizer.sample_batch(dataset.inputs, dataset.targets)
            value, gradients = network.loss_and_gradients(inputs, targets, loss)
            optimizer.step(network.parameters(), gradients)
            # Check progress on the full set to avoid mini-batch noise.
            if step % check_every == 0:
                full = loss.forward(network.forward(dataset.inputs), dataset.targets)
                if full <= target_loss:
                    steps_taken = step
                    break
        if steps_taken is None:
            raise TrainingError(
                f"batch size {batch_size} did not reach loss {target_loss}"
                f" within {max_steps} steps"
            )
        results[batch_size] = steps_taken
    return results
