"""The paper's graphical-model inference model (Section IV-B).

Computation: ``tGI_cp = max_i(E_i) * c(S) / F`` — vertex-parallel
inference gated by the worker with the most edges.  Communication, for
distributed (non-shared-memory) deployments, is linear in the replicated
state: ``tGI_cm = 32/B * r * V * S`` where ``r`` is the replication
factor and ``V * S`` the per-vertex state size in 32-bit words.

Expressed as a term tree: a tabulated computation term plus a callable
communication term (the replication curve ``r(n)`` has no closed form —
the paper estimates it from the partitioning scheme).
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Mapping
from dataclasses import dataclass

from repro.core.complexity import (
    CallableCost,
    CostTerm,
    NamedCost,
    ScaledCost,
    SumCost,
    TabulatedCost,
)
from repro.core.errors import ModelError
from repro.core.model import ScalabilityModel
from repro.graph.graph import DegreeSequence, Graph
from repro.graph.montecarlo import max_edges_curve

#: The paper's per-state message size.
BITS_PER_STATE = 32


@dataclass(frozen=True)
class GraphInferenceModel(ScalabilityModel):
    """General distributed graph inference: imbalanced compute + linear comm.

    ``cost_per_edge`` is ``c(S)`` — the algorithm's per-edge flop count
    given ``S`` states.  ``replication_of`` maps a worker count to the
    replication factor ``r`` (0 for one worker); the paper estimates it
    from the partitioning scheme.
    """

    max_edges: Mapping[int, float]
    cost_per_edge: float
    flops: float
    vertex_count: int
    states: int
    bandwidth_bps: float
    replication_of: Callable[[int], float]

    def __post_init__(self) -> None:
        if not self.max_edges:
            raise ModelError("max_edges must contain at least one worker count")
        if self.cost_per_edge <= 0:
            raise ModelError(f"cost_per_edge must be positive, got {self.cost_per_edge}")
        if self.flops <= 0:
            raise ModelError(f"flops must be positive, got {self.flops}")
        if self.vertex_count < 1:
            raise ModelError(f"vertex_count must be >= 1, got {self.vertex_count}")
        if self.states < 2:
            raise ModelError(f"states must be >= 2, got {self.states}")
        if self.bandwidth_bps <= 0:
            raise ModelError(f"bandwidth_bps must be positive, got {self.bandwidth_bps}")

    @classmethod
    def from_source(
        cls,
        source: Graph | DegreeSequence,
        workers_grid: Iterable[int],
        cost_per_edge: float,
        flops: float,
        states: int,
        bandwidth_bps: float,
        replication_of: Callable[[int], float],
        trials: int = 10,
        seed: int = 0,
    ) -> "GraphInferenceModel":
        """Estimate ``max_i(E_i)`` by Monte Carlo and assemble the model."""
        sequence = source.degree_sequence() if isinstance(source, Graph) else source
        curve = max_edges_curve(sequence, workers_grid, trials=trials, seed=seed)
        return cls(
            max_edges=curve,
            cost_per_edge=cost_per_edge,
            flops=flops,
            vertex_count=sequence.vertex_count,
            states=states,
            bandwidth_bps=bandwidth_bps,
            replication_of=replication_of,
        )

    def _replicated_state_seconds(self, workers: int) -> float:
        """``32/B * r(n) * V * S`` — zero for a single worker."""
        if workers == 1:
            return 0.0
        replication = float(self.replication_of(workers))
        if replication < 0:
            raise ModelError(f"replication factor must be non-negative, got {replication}")
        return (
            BITS_PER_STATE
            / self.bandwidth_bps
            * replication
            * self.vertex_count
            * self.states
        )

    def cost(self) -> CostTerm:
        computation = NamedCost(
            "computation",
            ScaledCost(
                TabulatedCost.from_mapping(self.max_edges, description="max-edges"),
                self.cost_per_edge / self.flops,
            ),
            kind="computation",
        )
        communication = CallableCost(
            self._replicated_state_seconds,
            name="communication",
            kind="communication",
        )
        return SumCost((computation, communication))
