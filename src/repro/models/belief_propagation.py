"""The paper's belief-propagation model (Section V-B).

Computation per superstep: ``tcp = max_i(E_i) * c(S) / F`` with the BP
per-edge cost ``c(S) = S + 2 * (S + S^2)`` (update a belief: S; generate
a message: marginalise S^2 plus S products, twice per edge direction).
On the shared-memory DL980 the paper takes ``tcm ~ 0``, so ``F`` cancels
in the speedup and the curve is governed purely by ``max_i(E_i)``.

The model is a term tree: the Monte-Carlo ``max_i(E_i)`` grid becomes a
:class:`~repro.core.complexity.TabulatedCost` scaled by ``c(S)/F``, and
the optional engine overhead a piecewise term active only once work is
actually distributed (``n >= 2``).
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping
from dataclasses import dataclass

from repro.core.complexity import (
    CostTerm,
    FixedCost,
    NamedCost,
    OverheadCost,
    PiecewiseCost,
    ScaledCost,
    SumCost,
    TabulatedCost,
)
from repro.core.errors import ModelError
from repro.core.model import ScalabilityModel
from repro.graph.graph import DegreeSequence, Graph
from repro.graph.montecarlo import max_edges_curve


def bp_cost_per_edge(states: int) -> float:
    """The paper's ``c(S) = S + 2 (S + S^2)``; 14 flops for S = 2."""
    if states < 2:
        raise ModelError(f"states must be >= 2, got {states}")
    return float(states + 2 * (states + states**2))


@dataclass(frozen=True)
class BeliefPropagationModel(ScalabilityModel):
    """Shared-memory BP: ``t(n) = max_i(E_i)(n) * c(S) / F``.

    ``max_edges`` maps each worker count on the study grid to the
    Monte-Carlo estimate of the heaviest worker's edge count; queries off
    the grid raise (the estimate is workload-specific, never interpolated).
    """

    max_edges: Mapping[int, float]
    states: int = 2
    flops: float = 1e9
    overhead_seconds_per_worker: float = 0.0
    overhead_seconds: float = 0.0

    def __post_init__(self) -> None:
        if not self.max_edges:
            raise ModelError("max_edges must contain at least one worker count")
        for workers, edges in self.max_edges.items():
            if workers < 1:
                raise ModelError(f"worker counts must be >= 1, got {workers}")
            if edges <= 0:
                raise ModelError(f"max edge counts must be positive, got {edges}")
        if self.states < 2:
            raise ModelError(f"states must be >= 2, got {self.states}")
        if self.flops <= 0:
            raise ModelError(f"flops must be positive, got {self.flops}")
        if self.overhead_seconds_per_worker < 0 or self.overhead_seconds < 0:
            raise ModelError("overhead terms must be non-negative")

    @classmethod
    def from_source(
        cls,
        source: Graph | DegreeSequence,
        workers_grid: Iterable[int],
        states: int = 2,
        flops: float = 1e9,
        trials: int = 10,
        seed: int = 0,
    ) -> "BeliefPropagationModel":
        """Build the model by running the paper's Monte-Carlo estimator."""
        curve = max_edges_curve(source, workers_grid, trials=trials, seed=seed)
        return cls(max_edges=curve, states=states, flops=flops)

    def with_overhead(
        self, overhead_seconds: float, overhead_seconds_per_worker: float
    ) -> "BeliefPropagationModel":
        """The paper's future-work feedback loop: add an engine-overhead term."""
        return BeliefPropagationModel(
            max_edges=self.max_edges,
            states=self.states,
            flops=self.flops,
            overhead_seconds=overhead_seconds,
            overhead_seconds_per_worker=overhead_seconds_per_worker,
        )

    def cost(self) -> CostTerm:
        computation = NamedCost(
            "computation",
            ScaledCost(
                TabulatedCost.from_mapping(self.max_edges, description="max-edges"),
                bp_cost_per_edge(self.states) / self.flops,
            ),
            kind="computation",
        )
        if self.overhead_seconds == 0 and self.overhead_seconds_per_worker == 0:
            return computation
        # Engine overhead only exists once work is actually distributed.
        overhead = NamedCost(
            "overhead",
            PiecewiseCost(
                (
                    (1, FixedCost(0.0)),
                    (2, OverheadCost(self.overhead_seconds, self.overhead_seconds_per_worker)),
                )
            ),
            kind="overhead",
        )
        return SumCost((computation, overhead))

    @property
    def workers_grid(self) -> tuple[int, ...]:
        """The grid the model is defined on, sorted."""
        return tuple(sorted(self.max_edges))
