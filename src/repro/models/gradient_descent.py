"""The paper's gradient-descent scalability models (Sections IV-A, V-A).

Three variants, in the paper's notation (``C`` ops/sample, ``S`` batch,
``F`` FLOPS/node, ``W`` parameters, ``B`` bit/s):

* generic data-parallel GD:       ``t = C*S/(F*n) + 2*(32W/B)*log2(n)``
* Spark batch GD (Figure 2):      ``t = 6W*S/(F*n) + (64W/B)*log2(n)
                                       + 2*(64W/B)*ceil(sqrt(n))``
* weak-scaling sync SGD (Fig. 3): ``t = ((C*S)/F + 2*(32W/B)*log2(n))/n``
  per training instance, plus a linear-communication variant the paper
  contrasts it with ("the linear communication model allows only finite
  scaling").

Every model is a *cost-term tree* (see :mod:`repro.core.complexity`):
the subclass builds its labeled terms in :meth:`cost` and inherits
batched ``times``, generic ``decompose`` and the speedup helpers from
:class:`~repro.core.model.ScalabilityModel`.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass

from repro.core.communication import LinearCommunication, TorrentBroadcast, TwoWaveAggregation
from repro.core.complexity import (
    AmortizedCost,
    CommunicationCost,
    ComputationCost,
    CostTerm,
    NamedCost,
    ScaledCost,
    SumCost,
)
from repro.core.errors import ModelError
from repro.core.model import ScalabilityModel


def _validate_common(
    operations_per_sample: float,
    batch_size: float,
    flops: float,
    parameters: float,
    bandwidth_bps: float,
    bits_per_parameter: int,
) -> None:
    if operations_per_sample <= 0:
        raise ModelError(f"operations_per_sample must be positive, got {operations_per_sample}")
    if batch_size <= 0:
        raise ModelError(f"batch_size must be positive, got {batch_size}")
    if flops <= 0:
        raise ModelError(f"flops must be positive, got {flops}")
    if parameters <= 0:
        raise ModelError(f"parameters must be positive, got {parameters}")
    if bandwidth_bps <= 0:
        raise ModelError(f"bandwidth_bps must be positive, got {bandwidth_bps}")
    if bits_per_parameter <= 0:
        raise ModelError(f"bits_per_parameter must be positive, got {bits_per_parameter}")


@dataclass(frozen=True)
class _GradientDescentBase(ScalabilityModel):
    """Shared parameters and term builders of the GD family."""

    operations_per_sample: float
    batch_size: float
    flops: float
    parameters: float
    bandwidth_bps: float
    bits_per_parameter: int = 32

    def __post_init__(self) -> None:
        _validate_common(
            self.operations_per_sample,
            self.batch_size,
            self.flops,
            self.parameters,
            self.bandwidth_bps,
            self.bits_per_parameter,
        )

    @property
    def gradient_bits(self) -> float:
        """The payload of one parameter transfer: ``bits * W``."""
        return float(self.bits_per_parameter) * self.parameters

    def _transfer(self) -> float:
        return self.gradient_bits / self.bandwidth_bps

    def _computation_term(self, parallel: bool = True) -> CostTerm:
        """``tcp = C * S / (F * n)`` (or the undivided ``C * S / F``)."""
        return ComputationCost(
            total_operations=self.operations_per_sample * self.batch_size,
            flops=self.flops,
            parallel=parallel,
        )

    def _tree_comm_term(self) -> CostTerm:
        """``2 * (bits*W/B) * log2(n)`` — two tree stages, smooth log.

        The paper's formula uses the smooth ``log2`` (its plotted curves
        are smooth), which is exactly :class:`TorrentBroadcast` with
        continuous rounds; the factor 2 is the paper's "two-stage
        communication" (distribute parameters, collect gradients).
        """
        return ScaledCost(
            CommunicationCost(
                TorrentBroadcast(self.bandwidth_bps), bits=self.gradient_bits
            ),
            2.0,
        )


@dataclass(frozen=True)
class GradientDescentModel(_GradientDescentBase):
    """Generic data-parallel GD: tree communication both ways.

    ``tcm = 2 * (bits*W/B) * log2(n)`` — the ``2`` is the paper's
    "two-stage communication" (distribute parameters, collect gradients).
    """

    def cost(self) -> CostTerm:
        return SumCost(
            (
                self._computation_term(),
                NamedCost("communication", self._tree_comm_term(), kind="communication"),
            )
        )


@dataclass(frozen=True)
class SparkGradientDescentModel(_GradientDescentBase):
    """The paper's Figure 2 model for Spark ML batch gradient descent.

    "Distribution of parameters is implemented with a torrent-like
    protocol.  Aggregation is done in two waves":

        tcm = (64W/B) * log2(n) + 2 * (64W/B) * ceil(sqrt(n))

    Note the two-wave term does not vanish at ``n = 1`` (a single worker
    still hands its gradient to the driver), exactly as the formula reads.
    """

    bits_per_parameter: int = 64

    def cost(self) -> CostTerm:
        broadcast = CommunicationCost(
            TorrentBroadcast(self.bandwidth_bps), bits=self.gradient_bits
        )
        aggregation = CommunicationCost(
            TwoWaveAggregation(self.bandwidth_bps), bits=self.gradient_bits
        )
        return SumCost(
            (
                self._computation_term(),
                NamedCost("broadcast", broadcast, kind="communication"),
                NamedCost("aggregation", aggregation, kind="communication"),
            )
        )

    def broadcast_time(self, workers: int) -> float:
        """Deprecated: the ``broadcast`` entry of :meth:`decompose`."""
        warnings.warn(
            "broadcast_time() is deprecated; use decompose()",
            DeprecationWarning,
            stacklevel=2,
        )
        return float(self.decompose([workers])["broadcast"][0])

    def aggregation_time(self, workers: int) -> float:
        """Deprecated: the ``aggregation`` entry of :meth:`decompose`."""
        warnings.warn(
            "aggregation_time() is deprecated; use decompose()",
            DeprecationWarning,
            stacklevel=2,
        )
        return float(self.decompose([workers])["aggregation"][0])


@dataclass(frozen=True)
class WeakScalingSGDModel(_GradientDescentBase):
    """Figure 3: time per training instance under weak scaling.

    Every worker computes a fixed batch ``S``; one superstep therefore
    processes ``S * n`` instances:

        t = ((C*S)/F + 2*(32W/B)*log2(n)) / n

    "Such assumption allows infinite weak scaling": t(n) is strictly
    decreasing, so adding workers always increases per-instance speedup.
    (The fixed per-worker batch ``S`` is a constant factor and cancels
    in speedups, as the paper notes.)
    """

    def _superstep_term(self) -> CostTerm:
        # Per-worker batch: the compute part does not shrink with n.
        return SumCost(
            (
                self._computation_term(parallel=False),
                NamedCost("communication", self._tree_comm_term(), kind="communication"),
            )
        )

    def cost(self) -> CostTerm:
        return AmortizedCost(self._superstep_term())

    def superstep_time(self, workers: int) -> float:
        """Wall time of one synchronous iteration at ``n`` workers."""
        return self._superstep_term().time(workers)


@dataclass(frozen=True)
class WeakScalingLinearCommModel(_GradientDescentBase):
    """The contrast case of Section V-A: linear instead of log communication.

    ``t = ((C*S)/F + (32W/B) * n) / n`` — as ``n`` grows the per-instance
    time approaches the constant ``32W/B``, so speedup saturates: "the
    linear communication model allows only finite scaling".
    """

    def cost(self) -> CostTerm:
        # include_self=True gives n serialised rounds (0 at n = 1).
        comm = CommunicationCost(
            LinearCommunication(self.bandwidth_bps, include_self=True),
            bits=self.gradient_bits,
        )
        return AmortizedCost(
            SumCost(
                (
                    self._computation_term(parallel=False),
                    NamedCost("communication", comm, kind="communication"),
                )
            )
        )

    @property
    def asymptotic_time(self) -> float:
        """The floor per-instance time ``32W/B`` that caps weak scaling."""
        return self._transfer()
