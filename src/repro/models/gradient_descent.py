"""The paper's gradient-descent scalability models (Sections IV-A, V-A).

Three variants, in the paper's notation (``C`` ops/sample, ``S`` batch,
``F`` FLOPS/node, ``W`` parameters, ``B`` bit/s):

* generic data-parallel GD:       ``t = C*S/(F*n) + 2*(32W/B)*log2(n)``
* Spark batch GD (Figure 2):      ``t = 6W*S/(F*n) + (64W/B)*log2(n)
                                       + 2*(64W/B)*ceil(sqrt(n))``
* weak-scaling sync SGD (Fig. 3): ``t = ((C*S)/F + 2*(32W/B)*log2(n))/n``
  per training instance, plus a linear-communication variant the paper
  contrasts it with ("the linear communication model allows only finite
  scaling").
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.errors import ModelError
from repro.core.model import ScalabilityModel


def _validate_common(
    operations_per_sample: float,
    batch_size: float,
    flops: float,
    parameters: float,
    bandwidth_bps: float,
    bits_per_parameter: int,
) -> None:
    if operations_per_sample <= 0:
        raise ModelError(f"operations_per_sample must be positive, got {operations_per_sample}")
    if batch_size <= 0:
        raise ModelError(f"batch_size must be positive, got {batch_size}")
    if flops <= 0:
        raise ModelError(f"flops must be positive, got {flops}")
    if parameters <= 0:
        raise ModelError(f"parameters must be positive, got {parameters}")
    if bandwidth_bps <= 0:
        raise ModelError(f"bandwidth_bps must be positive, got {bandwidth_bps}")
    if bits_per_parameter <= 0:
        raise ModelError(f"bits_per_parameter must be positive, got {bits_per_parameter}")


@dataclass(frozen=True)
class GradientDescentModel(ScalabilityModel):
    """Generic data-parallel GD: tree communication both ways.

    ``tcm = 2 * (bits*W/B) * log2(n)`` — the ``2`` is the paper's
    "two-stage communication" (distribute parameters, collect gradients).
    """

    operations_per_sample: float
    batch_size: float
    flops: float
    parameters: float
    bandwidth_bps: float
    bits_per_parameter: int = 32

    def __post_init__(self) -> None:
        _validate_common(
            self.operations_per_sample,
            self.batch_size,
            self.flops,
            self.parameters,
            self.bandwidth_bps,
            self.bits_per_parameter,
        )

    def _transfer(self) -> float:
        return self.bits_per_parameter * self.parameters / self.bandwidth_bps

    def computation_time(self, workers: int) -> float:
        """``tcp = C * S / (F * n)``."""
        if workers < 1:
            raise ModelError(f"workers must be >= 1, got {workers}")
        return self.operations_per_sample * self.batch_size / (self.flops * workers)

    def communication_time(self, workers: int) -> float:
        """``tcm = 2 * (bits*W/B) * log2(n)``."""
        if workers < 1:
            raise ModelError(f"workers must be >= 1, got {workers}")
        if workers == 1:
            return 0.0
        return 2.0 * self._transfer() * math.log2(workers)

    def time(self, workers: int) -> float:
        return self.computation_time(workers) + self.communication_time(workers)


@dataclass(frozen=True)
class SparkGradientDescentModel(ScalabilityModel):
    """The paper's Figure 2 model for Spark ML batch gradient descent.

    "Distribution of parameters is implemented with a torrent-like
    protocol.  Aggregation is done in two waves":

        tcm = (64W/B) * log2(n) + 2 * (64W/B) * ceil(sqrt(n))

    Note the two-wave term does not vanish at ``n = 1`` (a single worker
    still hands its gradient to the driver), exactly as the formula reads.
    """

    operations_per_sample: float
    batch_size: float
    flops: float
    parameters: float
    bandwidth_bps: float
    bits_per_parameter: int = 64

    def __post_init__(self) -> None:
        _validate_common(
            self.operations_per_sample,
            self.batch_size,
            self.flops,
            self.parameters,
            self.bandwidth_bps,
            self.bits_per_parameter,
        )

    def _transfer(self) -> float:
        return self.bits_per_parameter * self.parameters / self.bandwidth_bps

    def computation_time(self, workers: int) -> float:
        """``tcp = C * S / (F * n)`` (C = 6W for the MNIST network)."""
        if workers < 1:
            raise ModelError(f"workers must be >= 1, got {workers}")
        return self.operations_per_sample * self.batch_size / (self.flops * workers)

    def broadcast_time(self, workers: int) -> float:
        """Torrent distribution: ``(64W/B) * log2(n)``."""
        if workers < 1:
            raise ModelError(f"workers must be >= 1, got {workers}")
        if workers == 1:
            return 0.0
        return self._transfer() * math.log2(workers)

    def aggregation_time(self, workers: int) -> float:
        """Two-wave collection: ``2 * (64W/B) * ceil(sqrt(n))``."""
        if workers < 1:
            raise ModelError(f"workers must be >= 1, got {workers}")
        return 2.0 * self._transfer() * math.ceil(math.sqrt(workers))

    def communication_time(self, workers: int) -> float:
        """Total ``tcm``: broadcast plus aggregation."""
        return self.broadcast_time(workers) + self.aggregation_time(workers)

    def time(self, workers: int) -> float:
        return self.computation_time(workers) + self.communication_time(workers)


@dataclass(frozen=True)
class WeakScalingSGDModel(ScalabilityModel):
    """Figure 3: time per training instance under weak scaling.

    Every worker computes a fixed batch ``S``; one superstep therefore
    processes ``S * n`` instances:

        t = ((C*S)/F + 2*(32W/B)*log2(n)) / n

    "Such assumption allows infinite weak scaling": t(n) is strictly
    decreasing, so adding workers always increases per-instance speedup.
    """

    operations_per_sample: float
    batch_size: float
    flops: float
    parameters: float
    bandwidth_bps: float
    bits_per_parameter: int = 32

    def __post_init__(self) -> None:
        _validate_common(
            self.operations_per_sample,
            self.batch_size,
            self.flops,
            self.parameters,
            self.bandwidth_bps,
            self.bits_per_parameter,
        )

    def superstep_time(self, workers: int) -> float:
        """Wall time of one synchronous iteration at ``n`` workers."""
        if workers < 1:
            raise ModelError(f"workers must be >= 1, got {workers}")
        compute = self.operations_per_sample * self.batch_size / self.flops
        if workers == 1:
            return compute
        transfer = self.bits_per_parameter * self.parameters / self.bandwidth_bps
        return compute + 2.0 * transfer * math.log2(workers)

    def time(self, workers: int) -> float:
        """Per-instance time: the paper divides the superstep by ``n``.

        (The fixed per-worker batch ``S`` is a constant factor and cancels
        in speedups, as the paper notes.)
        """
        return self.superstep_time(workers) / workers


@dataclass(frozen=True)
class WeakScalingLinearCommModel(ScalabilityModel):
    """The contrast case of Section V-A: linear instead of log communication.

    ``t = ((C*S)/F + (32W/B) * n) / n`` — as ``n`` grows the per-instance
    time approaches the constant ``32W/B``, so speedup saturates: "the
    linear communication model allows only finite scaling".
    """

    operations_per_sample: float
    batch_size: float
    flops: float
    parameters: float
    bandwidth_bps: float
    bits_per_parameter: int = 32

    def __post_init__(self) -> None:
        _validate_common(
            self.operations_per_sample,
            self.batch_size,
            self.flops,
            self.parameters,
            self.bandwidth_bps,
            self.bits_per_parameter,
        )

    def time(self, workers: int) -> float:
        if workers < 1:
            raise ModelError(f"workers must be >= 1, got {workers}")
        compute = self.operations_per_sample * self.batch_size / self.flops
        transfer = self.bits_per_parameter * self.parameters / self.bandwidth_bps
        comm = 0.0 if workers == 1 else transfer * workers
        return (compute + comm) / workers

    @property
    def asymptotic_time(self) -> float:
        """The floor per-instance time ``32W/B`` that caps weak scaling."""
        return self.bits_per_parameter * self.parameters / self.bandwidth_bps
