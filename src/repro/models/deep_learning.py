"""Deep-learning model factories: Table I architectures on paper hardware.

These assemble the Section V-A models from the architecture specs and the
hardware catalog, with the paper's exact constants, plus a generic
builder for capacity planning on arbitrary architecture/hardware pairs.
"""

from __future__ import annotations

from repro.core.errors import ModelError
from repro.core.units import BITS_DOUBLE_PRECISION, BITS_SINGLE_PRECISION, GIGA
from repro.hardware.specs import LinkSpec, NodeSpec
from repro.models.gradient_descent import (
    GradientDescentModel,
    SparkGradientDescentModel,
    WeakScalingLinearCommModel,
    WeakScalingSGDModel,
)
from repro.nn.architectures import NetworkSpec, mnist_fc
from repro.nn.flops import DENSE_TRAINING_OPERATIONS_PER_WEIGHT, training_operations

#: Paper constants for Figure 2 (Spark, MNIST FC network).
SPARK_FLOPS = 0.8 * 105.6 * GIGA  # 80% of the Xeon's double-precision peak
SPARK_BANDWIDTH = 1.0 * GIGA
SPARK_BATCH = 60000.0

#: Paper constants for Figure 3 (Chen et al., Inception v3 on K40s).
K40_FLOPS = 0.5 * 4.28e12  # 50% of peak
CHEN_BATCH = 128.0
CHEN_PARAMETERS = 25e6
CHEN_OPERATIONS = 3.0 * 5e9


def spark_mnist_figure2_model() -> SparkGradientDescentModel:
    """The exact Figure 2 model: W = 12e6 (64-bit), S = 60000, C = 6W.

    ``W`` is taken from the architecture spec (11.97e6, the value the
    paper rounds to 12e6).
    """
    weights = float(mnist_fc().total_weights)
    return SparkGradientDescentModel(
        operations_per_sample=DENSE_TRAINING_OPERATIONS_PER_WEIGHT * weights,
        batch_size=SPARK_BATCH,
        flops=SPARK_FLOPS,
        parameters=weights,
        bandwidth_bps=SPARK_BANDWIDTH,
        bits_per_parameter=BITS_DOUBLE_PRECISION,
    )


def chen_inception_figure3_model() -> WeakScalingSGDModel:
    """The exact Figure 3 model: W = 25e6, C = 3*5e9, S = 128, F = 2.14e12."""
    return WeakScalingSGDModel(
        operations_per_sample=CHEN_OPERATIONS,
        batch_size=CHEN_BATCH,
        flops=K40_FLOPS,
        parameters=CHEN_PARAMETERS,
        bandwidth_bps=SPARK_BANDWIDTH,
        bits_per_parameter=BITS_SINGLE_PRECISION,
    )


def chen_inception_linear_comm_model() -> WeakScalingLinearCommModel:
    """The linear-communication contrast of Section V-A."""
    return WeakScalingLinearCommModel(
        operations_per_sample=CHEN_OPERATIONS,
        batch_size=CHEN_BATCH,
        flops=K40_FLOPS,
        parameters=CHEN_PARAMETERS,
        bandwidth_bps=SPARK_BANDWIDTH,
        bits_per_parameter=BITS_SINGLE_PRECISION,
    )


def gd_model_for(
    architecture: NetworkSpec,
    node: NodeSpec,
    link: LinkSpec,
    batch_size: float,
    bits_per_parameter: int = BITS_SINGLE_PRECISION,
) -> GradientDescentModel:
    """A generic GD model for any architecture/hardware pair.

    This is the capacity-planning entry point: pick an architecture from
    :mod:`repro.nn.architectures` and a node/link from the catalog, and
    get a model answering the introduction's two questions.
    """
    if batch_size <= 0:
        raise ModelError(f"batch_size must be positive, got {batch_size}")
    weights = float(architecture.total_weights)
    operations = training_operations(float(architecture.forward_operations))
    return GradientDescentModel(
        operations_per_sample=operations,
        batch_size=batch_size,
        flops=node.effective_flops,
        parameters=weights,
        bandwidth_bps=link.bandwidth_bps,
        bits_per_parameter=bits_per_parameter,
    )
