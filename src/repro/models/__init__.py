"""The paper's per-algorithm scalability models (Sections IV and V)."""

from repro.models.asynchronous import AsyncSGDModel
from repro.models.belief_propagation import BeliefPropagationModel, bp_cost_per_edge
from repro.models.convergence import (
    CriticalBatchRule,
    TimeToAccuracyModel,
    fit_critical_batch,
    measure_iterations_to_target,
)
from repro.models.deep_learning import (
    CHEN_BATCH,
    CHEN_OPERATIONS,
    CHEN_PARAMETERS,
    K40_FLOPS,
    SPARK_BANDWIDTH,
    SPARK_BATCH,
    SPARK_FLOPS,
    chen_inception_figure3_model,
    chen_inception_linear_comm_model,
    gd_model_for,
    spark_mnist_figure2_model,
)
from repro.models.gradient_descent import (
    GradientDescentModel,
    SparkGradientDescentModel,
    WeakScalingLinearCommModel,
    WeakScalingSGDModel,
)
from repro.models.graphical import BITS_PER_STATE, GraphInferenceModel

__all__ = [
    "AsyncSGDModel",
    "CriticalBatchRule",
    "TimeToAccuracyModel",
    "fit_critical_batch",
    "measure_iterations_to_target",
    "BeliefPropagationModel",
    "bp_cost_per_edge",
    "CHEN_BATCH",
    "CHEN_OPERATIONS",
    "CHEN_PARAMETERS",
    "K40_FLOPS",
    "SPARK_BANDWIDTH",
    "SPARK_BATCH",
    "SPARK_FLOPS",
    "chen_inception_figure3_model",
    "chen_inception_linear_comm_model",
    "gd_model_for",
    "spark_mnist_figure2_model",
    "GradientDescentModel",
    "SparkGradientDescentModel",
    "WeakScalingLinearCommModel",
    "WeakScalingSGDModel",
    "BITS_PER_STATE",
    "GraphInferenceModel",
]
