"""Cost-vs-time Pareto frontier with dominated-point elimination.

A candidate configuration *dominates* another when it is no worse on
both axes (cost and time) and strictly better on at least one.  The
frontier is the set of non-dominated candidates — every point a rational
planner could defend picking, whatever their exchange rate between
dollars and seconds.  Points that tie exactly on both axes do not
dominate each other; all of them are kept (they are genuinely
interchangeable configurations, and a report should show the choice).

The implementation is the classic sort-and-scan: sort by (cost, time),
keep a point iff it is strictly faster than everything cheaper already
kept.  Ordering is deterministic — ties beyond (cost, time) preserve the
candidate evaluation order — which is what makes frontier payloads
byte-identical between serial and process-pool plan evaluation.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

from repro.core.errors import PlanError


def dominates(cost_a: float, time_a: float, cost_b: float, time_b: float) -> bool:
    """Whether point A dominates point B on (cost, time)."""
    return (
        cost_a <= cost_b
        and time_a <= time_b
        and (cost_a < cost_b or time_a < time_b)
    )


def pareto_frontier(
    points: Sequence[Mapping[str, object]],
    cost_key: str = "cost_usd",
    time_key: str = "time_s",
) -> list[dict[str, object]]:
    """The non-dominated subset of ``points``, sorted by ascending cost.

    Each point is a mapping carrying at least ``cost_key`` and
    ``time_key``; the returned dicts are shallow copies of the inputs in
    (cost, time, input-order) order.  Exact (cost, time) duplicates are
    all kept — see the module docstring.
    """
    decorated = []
    for index, point in enumerate(points):
        try:
            cost = float(point[cost_key])  # type: ignore[arg-type]
            time = float(point[time_key])  # type: ignore[arg-type]
        except (KeyError, TypeError, ValueError):
            raise PlanError(
                f"pareto points need numeric {cost_key!r} and {time_key!r}"
                f" entries; point {index} has keys {sorted(point)}"
            )
        decorated.append((cost, time, index, point))
    decorated.sort(key=lambda entry: (entry[0], entry[1], entry[2]))

    frontier: list[dict[str, object]] = []
    best_time = float("inf")
    previous: tuple[float, float] | None = None
    for cost, time, _index, point in decorated:
        # Strictly faster than every cheaper point already kept, or an
        # exact (cost, time) tie with the point just kept.
        if time < best_time or (cost, time) == previous:
            frontier.append(dict(point))
            best_time = min(best_time, time)
            previous = (cost, time)
    return frontier


def is_dominated(
    candidate: Mapping[str, object],
    points: Sequence[Mapping[str, object]],
    cost_key: str = "cost_usd",
    time_key: str = "time_s",
) -> bool:
    """Whether any of ``points`` dominates ``candidate`` on (cost, time)."""
    cost = float(candidate[cost_key])  # type: ignore[arg-type]
    time = float(candidate[time_key])  # type: ignore[arg-type]
    return any(
        dominates(float(p[cost_key]), float(p[time_key]), cost, time)  # type: ignore[arg-type]
        for p in points
    )
