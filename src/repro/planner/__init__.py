"""Capacity planner: scalability models turned into provisioning decisions.

The paper's models exist to answer a decision question — how many
workers, on what hardware, over which topology, before scaling stops
paying off.  This package asks it declaratively: a :class:`PlanSpec`
(JSON, validated, content-hashed) names a base scenario, a search space
of candidate configurations, an objective and constraints;
:func:`run_plan` evaluates the whole product space through the scenario
engine's pluggable backends, prunes with the constraints, reports the
cost-vs-time Pareto frontier, and refines the optimum beyond the grid on
the continuous closed form.  See ``docs/planner.md``.
"""

from repro.planner.pareto import dominates, is_dominated, pareto_frontier
from repro.planner.report import PlanPoint, Recommendation
from repro.planner.search import (
    point_cost_usd,
    run_plan,
    work_units_per_run,
)
from repro.planner.spec import (
    CONSTRAINT_KEYS,
    OBJECTIVES,
    Constraints,
    PlanSpec,
    SearchSpace,
    builtin_plan_names,
    builtin_plan_path,
    derived_scenario,
    load_builtin_plan,
    load_plan,
    parse_plan,
    resolve_plan,
    resolve_price,
)

__all__ = [
    "CONSTRAINT_KEYS",
    "OBJECTIVES",
    "Constraints",
    "PlanPoint",
    "PlanSpec",
    "Recommendation",
    "SearchSpace",
    "builtin_plan_names",
    "builtin_plan_path",
    "derived_scenario",
    "dominates",
    "is_dominated",
    "load_builtin_plan",
    "load_plan",
    "pareto_frontier",
    "parse_plan",
    "point_cost_usd",
    "resolve_plan",
    "resolve_price",
    "run_plan",
    "work_units_per_run",
]
