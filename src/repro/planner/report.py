"""The planner's answer: a structured, exportable recommendation.

A :class:`Recommendation` carries the chosen configuration, the
cost-vs-time Pareto frontier, the marginal-speedup-per-dollar table of
the chosen configuration, and the sensitivity of its optimum to ±20 %
hardware perturbations — everything a provisioning decision needs to be
defended, not just stated.  It renders as text (the CLI default),
exports as JSON (``payload()`` / ``to_json``), and flattens to CSV (the
full priced candidate table, one row per configuration × worker count).
"""

from __future__ import annotations

import csv
import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.core.errors import PlanError

#: Recognised structured-export formats, by file suffix.
EXPORT_SUFFIXES = (".json", ".csv")


def export_format(path: str | Path) -> str:
    """The export suffix for ``path``, validated.

    Shared by :meth:`Recommendation.export` and the CLI's pre-run check,
    so a rejected target fails *before* a possibly expensive optimisation
    runs and both layers agree on what counts as a valid target.
    """
    suffix = Path(path).suffix.lower()
    if suffix not in EXPORT_SUFFIXES:
        raise PlanError(
            f"cannot infer export format from {str(path)!r};"
            f" use {' or '.join(EXPORT_SUFFIXES)}"
        )
    return suffix


#: Ordered columns of a candidate point's tabular form.
_POINT_FIELDS = (
    "node",
    "link",
    "topology",
    "workers",
    "time_s",
    "speedup",
    "efficiency",
    "cost_usd",
    "throughput_per_s",
)


@dataclass(frozen=True)
class PlanPoint:
    """One candidate: a hardware/topology configuration at a worker count.

    ``cost_usd`` is the price of executing the plan's ``runs`` runs of
    the modelled workload: ``workers × price/h × time × runs`` for
    per-node hardware, ``price/h × time × runs`` for shared-memory
    machines (the whole host is rented regardless of cores used).
    ``throughput_per_s`` is the workload's work units per second (see
    :func:`repro.planner.search.work_units_per_run`).  ``violations``
    names the constraints the point breaks; an empty tuple means
    feasible.
    """

    node: str
    link: str
    topology: str
    workers: int
    time_s: float
    speedup: float
    efficiency: float
    cost_usd: float
    throughput_per_s: float
    violations: tuple[str, ...] = ()

    @property
    def feasible(self) -> bool:
        return not self.violations

    def to_dict(self) -> dict[str, object]:
        data: dict[str, object] = {
            key: getattr(self, key) for key in _POINT_FIELDS
        }
        data["feasible"] = self.feasible
        data["violations"] = list(self.violations)
        return data


@dataclass(frozen=True)
class Recommendation:
    """The outcome of optimising one capacity plan.

    ``chosen`` is ``None`` when no candidate satisfies the constraints —
    that is a *result* (the plan is infeasible as stated), not an error.
    The frontier is empty in that case (it ranges over feasible points
    only), but the per-constraint violation counts tell the reader which
    limit to relax.  ``refined_workers`` is the
    golden-section continuous optimum of the chosen configuration's
    analytic model (``None`` when refinement is disabled or the model has
    no continuation); ``analytic_optimal_workers`` is the analytic grid
    argmax of the same configuration — the paper's ``N``.
    """

    plan: str
    content_hash: str
    objective: str
    backend: str
    runs: int
    constraints: dict
    chosen: PlanPoint | None
    pareto: tuple[PlanPoint, ...]
    candidates: tuple[PlanPoint, ...]
    analytic_optimal_workers: int | None = None
    refined_workers: float | None = None
    knee_workers: int | None = None
    knee_fraction: float = 0.95
    marginal: tuple[dict, ...] = ()
    sensitivity: tuple[dict, ...] = ()
    violation_counts: dict = field(default_factory=dict)
    stats: dict = field(default_factory=dict)

    def payload(self) -> dict:
        """JSON-serialisable form: the whole decision, reproducibly."""
        return {
            "plan": self.plan,
            "content_hash": self.content_hash,
            "objective": self.objective,
            "backend": self.backend,
            "runs": self.runs,
            "constraints": dict(self.constraints),
            "recommendation": None if self.chosen is None else self.chosen.to_dict(),
            "analytic_optimal_workers": self.analytic_optimal_workers,
            "refined_workers": self.refined_workers,
            "knee_workers": self.knee_workers,
            "knee_fraction": self.knee_fraction,
            "pareto": [point.to_dict() for point in self.pareto],
            "marginal_speedup_per_usd": [dict(row) for row in self.marginal],
            "sensitivity": [dict(row) for row in self.sensitivity],
            "candidates_total": len(self.candidates),
            "feasible_total": sum(1 for p in self.candidates if p.feasible),
            "violation_counts": dict(self.violation_counts),
        }

    def frontier_payload(self) -> list[dict]:
        """Just the Pareto frontier, in report order (for golden files)."""
        return [point.to_dict() for point in self.pareto]

    def candidate_rows(self) -> list[dict[str, object]]:
        """The full priced candidate table (the CSV payload)."""
        rows = []
        for point in self.candidates:
            row = point.to_dict()
            row["violations"] = ";".join(point.violations)
            rows.append(row)
        return rows

    def to_json(self, path: str | Path) -> Path:
        target = Path(path)
        document = self.payload()
        document["stats"] = self.stats
        target.write_text(json.dumps(document, indent=2) + "\n")
        return target

    def to_csv(self, path: str | Path) -> Path:
        target = Path(path)
        rows = self.candidate_rows()
        fieldnames = list(_POINT_FIELDS) + ["feasible", "violations"]
        with target.open("w", newline="") as stream:
            writer = csv.DictWriter(stream, fieldnames=fieldnames)
            writer.writeheader()
            writer.writerows(rows)
        return target

    def export(self, path: str | Path) -> Path:
        """Dispatch on suffix: ``.json`` or ``.csv``."""
        if export_format(path) == ".json":
            return self.to_json(path)
        return self.to_csv(path)

    def render(self) -> str:
        """Human-readable report block (the CLI's default output)."""
        from repro.experiments.plotting import render_table

        lines = [f"== plan: {self.plan} ({self.objective}, backend {self.backend})", ""]
        if self.chosen is None:
            lines.append("  no feasible configuration satisfies the constraints:")
            for name in sorted(self.violation_counts):
                lines.append(
                    f"    {name}: violated by {self.violation_counts[name]}"
                    f" of {len(self.candidates)} candidates"
                )
        else:
            chosen = self.chosen
            lines.append(
                f"  recommend: {chosen.workers} x {chosen.node}"
                + (f" over {chosen.link}" if chosen.link else "")
                + (f" ({chosen.topology})" if chosen.topology else "")
            )
            lines.append(
                f"    time {chosen.time_s:.4g}s, speedup {chosen.speedup:.3g}x,"
                f" efficiency {chosen.efficiency:.1%},"
                f" cost ${chosen.cost_usd:.4g} for {self.runs} run(s)"
            )
            details = []
            if self.analytic_optimal_workers is not None:
                details.append(f"analytic argmax N = {self.analytic_optimal_workers}")
            if self.refined_workers is not None:
                details.append(f"refined optimum n* = {self.refined_workers:.2f}")
            if self.knee_workers is not None:
                details.append(
                    f"knee ({self.knee_fraction:.0%} of peak) = {self.knee_workers}"
                )
            if details:
                lines.append("    " + "; ".join(details))
        lines.append("")
        lines.append(f"  pareto frontier ({len(self.pareto)} point(s), cost vs time):")
        lines.append("")
        frontier_rows = [
            {
                key: point.to_dict()[key]
                for key in ("node", "link", "topology", "workers", "time_s", "cost_usd", "speedup")
            }
            for point in self.pareto
        ]
        if frontier_rows:
            lines.append(render_table(frontier_rows))
        if self.marginal:
            lines.append("")
            lines.append("  marginal speedup per dollar (chosen configuration):")
            lines.append("")
            lines.append(render_table([dict(row) for row in self.marginal]))
        if self.sensitivity:
            lines.append("")
            lines.append("  sensitivity of the optimum (chosen configuration):")
            lines.append("")
            lines.append(render_table([dict(row) for row in self.sensitivity]))
        return "\n".join(lines)
