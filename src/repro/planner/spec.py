"""Declarative capacity-plan specifications.

A *plan* is plain data — a dict (usually a JSON file) — describing a
provisioning question: a base scenario, a search space of candidate
configurations (worker counts × hardware-catalog nodes × links ×
communication topologies), an objective, and constraints.  The planner
(:mod:`repro.planner.search`) compiles the search space into a derived
scenario sweep, evaluates it through the scenario engine's
:class:`~repro.core.backend.EvaluationBackend` machinery (batched,
cacheable, process-pool parallel, bit-deterministic), and answers with a
:class:`~repro.planner.report.Recommendation`.

The schema (version 1)::

    {
      "plan": 1,                           # schema version (optional)
      "name": "plan-bp-budget",
      "description": "free text",
      "scenario": "figure2",               # builtin scenario name, a path,
                                           # or an inline scenario document
      "search": {                          # all axes optional
        "workers": {"min": 1, "max": 13},  # overrides the scenario's grid
        "nodes": ["xeon-e3-1240"],         # compute candidates (catalog)
        "links": ["1gbe", "10gbe"],        # interconnect candidates
        "topologies": ["tree", "ring-allreduce"]   # bsp scenarios only
      },
      "objective": "min-time",             # min-time | min-cost | max-throughput
      "constraints": {                     # all optional
        "deadline_s": 30.0,                # t(config) <= deadline
        "budget_usd": 25.0,                # cost(config) <= budget
        "min_efficiency": 0.25             # parallel efficiency floor
      },
      "runs": 10000,                       # executions the budget covers
      "prices": {"xeon-e3-1240": 0.21},    # per-node-hour overrides (USD)
      "refine": true,                      # golden-section the optimum
      "knee_fraction": 0.95                # knee() threshold in the report
    }

Validation is eager, with messages naming the valid alternatives;
everything lands in frozen dataclasses so a plan is hashable content,
like a scenario spec.
"""

from __future__ import annotations

import hashlib
import json
import math
from collections.abc import Mapping, Sequence
from pathlib import Path

from dataclasses import dataclass

from repro.core.errors import PlanError, ReproError
from repro.hardware import catalog
from repro.hardware.specs import LinkSpec, NodeSpec, SharedMemoryMachineSpec
from repro.scenarios.compile import TOPOLOGIES
from repro.scenarios.spec import (
    ScenarioSpec,
    parse_scenario,
    resolve_scenario,
)

#: Current plan schema version; bumped on incompatible schema changes.
PLAN_SCHEMA_VERSION = 1

#: Bumped whenever planning semantics change (part of the content hash).
PLANNER_VERSION = 1

#: The recognised objectives and what they optimise.
OBJECTIVES = ("min-time", "min-cost", "max-throughput")

#: The recognised constraint keys.
CONSTRAINT_KEYS = ("deadline_s", "budget_usd", "min_efficiency")

#: Keys of the ``search`` section.
SEARCH_KEYS = ("workers", "nodes", "links", "topologies")

#: Directory holding the bundled plan specs.
BUILTIN_PLAN_DIR = Path(__file__).resolve().parent / "builtin"


@dataclass(frozen=True)
class SearchSpace:
    """The candidate axes a plan optimises over.

    Empty axes mean "keep the scenario's declared choice"; a plan with
    every axis empty still optimises over the worker grid.
    """

    workers: tuple[int, ...] = ()
    nodes: tuple[str, ...] = ()
    links: tuple[str, ...] = ()
    topologies: tuple[str, ...] = ()

    @property
    def configurations(self) -> int:
        """Number of hardware/topology combinations (worker grid excluded)."""
        count = 1
        for axis in (self.nodes, self.links, self.topologies):
            count *= max(1, len(axis))
        return count

    def to_dict(self) -> dict[str, object]:
        data: dict[str, object] = {}
        if self.workers:
            data["workers"] = list(self.workers)
        if self.nodes:
            data["nodes"] = list(self.nodes)
        if self.links:
            data["links"] = list(self.links)
        if self.topologies:
            data["topologies"] = list(self.topologies)
        return data


@dataclass(frozen=True)
class Constraints:
    """Feasibility limits applied before the objective picks a point."""

    deadline_s: float | None = None
    budget_usd: float | None = None
    min_efficiency: float | None = None

    def to_dict(self) -> dict[str, float]:
        return {
            key: getattr(self, key)
            for key in CONSTRAINT_KEYS
            if getattr(self, key) is not None
        }

    def violations(
        self, time_s: float, cost_usd: float, efficiency: float
    ) -> tuple[str, ...]:
        """Names of the constraints a candidate point breaks.

        Always in :data:`CONSTRAINT_KEYS` declaration order, so the
        tuple (and everything serialised from it) is deterministic.
        """
        broken = []
        if self.deadline_s is not None and time_s > self.deadline_s:
            broken.append("deadline_s")
        if self.budget_usd is not None and cost_usd > self.budget_usd:
            broken.append("budget_usd")
        if self.min_efficiency is not None and efficiency < self.min_efficiency:
            broken.append("min_efficiency")
        return tuple(broken)


@dataclass(frozen=True)
class PlanSpec:
    """A fully validated capacity plan, ready for optimisation."""

    name: str
    description: str
    scenario: ScenarioSpec
    search: SearchSpace
    objective: str = "min-time"
    constraints: Constraints = Constraints()
    runs: int = 1
    prices: tuple[tuple[str, float], ...] = ()
    refine: bool = True
    knee_fraction: float = 0.95
    schema_version: int = PLAN_SCHEMA_VERSION

    @property
    def prices_dict(self) -> dict[str, float]:
        return dict(self.prices)

    def to_dict(self) -> dict[str, object]:
        """Canonical plain-data form (JSON-serialisable, re-parseable)."""
        data: dict[str, object] = {
            "plan": self.schema_version,
            "name": self.name,
            "description": self.description,
            "scenario": self.scenario.to_dict(),
            "objective": self.objective,
            "runs": self.runs,
            "refine": self.refine,
            "knee_fraction": self.knee_fraction,
        }
        search = self.search.to_dict()
        if search:
            data["search"] = search
        constraints = self.constraints.to_dict()
        if constraints:
            data["constraints"] = constraints
        if self.prices:
            data["prices"] = dict(self.prices)
        return data

    def content_hash(self) -> str:
        """SHA-256 over the canonical form — the plan's content identity.

        Folds in :data:`PLANNER_VERSION` (planning semantics) and, via
        the embedded scenario's canonical form, the scenario engine's
        semantics too.
        """
        payload = {"planner": PLANNER_VERSION, "plan": self.to_dict()}
        canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    def price_per_node_hour(self, node_slug: str) -> float:
        """The USD/hour price of one candidate node (overrides win)."""
        return resolve_price(node_slug, self.prices_dict)

    def node_is_shared_memory(self, node_slug: str) -> bool:
        """Whether a candidate node prices per machine, not per worker."""
        return isinstance(catalog.lookup(node_slug), SharedMemoryMachineSpec)


def resolve_price(node_slug: str, overrides: Mapping[str, float]) -> float:
    """The planning price of a compute slug: override, else catalog."""
    if node_slug in overrides:
        return float(overrides[node_slug])
    entry = catalog.lookup(node_slug)
    if isinstance(entry, LinkSpec):
        raise PlanError(f"hardware {node_slug!r} is a network link, not a compute node")
    return entry.price_per_hour


def _require_mapping(value: object, context: str) -> Mapping:
    if not isinstance(value, Mapping):
        raise PlanError(f"{context} must be a mapping, got {type(value).__name__}")
    return value


def _reject_unknown(section: Mapping, allowed: Sequence[str], context: str) -> None:
    unknown = sorted(set(section) - set(allowed))
    if unknown:
        raise PlanError(f"unknown {context} keys {unknown}; allowed: {sorted(allowed)}")


def _parse_number(value: object, context: str, positive: bool = True) -> float:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise PlanError(f"{context} must be a number, got {value!r}")
    number = float(value)
    if not math.isfinite(number):
        raise PlanError(f"{context} must be finite, got {number}")
    if positive and number <= 0:
        raise PlanError(f"{context} must be positive, got {number}")
    if not positive and number < 0:
        raise PlanError(f"{context} must be non-negative, got {number}")
    return number


def _parse_slug_axis(values: object, context: str) -> tuple[str, ...]:
    if not isinstance(values, Sequence) or isinstance(values, (str, bytes)):
        raise PlanError(f"{context} must list catalog slugs")
    slugs = []
    for value in values:
        if not isinstance(value, str) or not value:
            raise PlanError(f"{context} entries must be slug strings, got {value!r}")
        slugs.append(value)
    if len(set(slugs)) != len(slugs):
        raise PlanError(f"{context} has duplicate entries")
    return tuple(slugs)


def _parse_search(data: object, scenario: ScenarioSpec) -> SearchSpace:
    section = _require_mapping(data, "'search'")
    _reject_unknown(section, SEARCH_KEYS, "search")

    workers: tuple[int, ...] = ()
    if "workers" in section:
        # Worker grids share the scenario schema's syntax and invariants
        # (range mapping or explicit list, unique, capped).
        from repro.scenarios.spec import _parse_workers  # shared validation

        try:
            workers = _parse_workers(section["workers"])
        except ReproError as error:
            raise PlanError(f"search.workers: {error}")

    nodes = _parse_slug_axis(section["nodes"], "search.nodes") if "nodes" in section else ()
    links = _parse_slug_axis(section["links"], "search.links") if "links" in section else ()
    for slug in nodes:
        try:
            entry = catalog.lookup(slug)
        except ReproError as error:
            raise PlanError(f"search.nodes: {error}")
        if isinstance(entry, LinkSpec):
            raise PlanError(
                f"search.nodes entry {slug!r} is a network link, not a compute node"
            )
    for slug in links:
        try:
            entry = catalog.lookup(slug)
        except ReproError as error:
            raise PlanError(f"search.links: {error}")
        if not isinstance(entry, LinkSpec):
            raise PlanError(
                f"search.links entry {slug!r} is a {type(entry).__name__},"
                " not a network link"
            )

    topologies: tuple[str, ...] = ()
    if "topologies" in section:
        topologies = _parse_slug_axis(section["topologies"], "search.topologies")
        if scenario.algorithm.kind != "bsp":
            raise PlanError(
                "search.topologies is only searchable for the 'bsp' algorithm"
                f" kind; the scenario declares {scenario.algorithm.kind!r}"
                " (the gradient-descent and BP kinds fix their topology)"
            )
        unknown = sorted(set(topologies) - set(TOPOLOGIES))
        if unknown:
            raise PlanError(
                f"unknown search.topologies entries {unknown};"
                f" known: {', '.join(sorted(TOPOLOGIES))}"
            )
    return SearchSpace(workers=workers, nodes=nodes, links=links, topologies=topologies)


def _parse_constraints(data: object) -> Constraints:
    section = _require_mapping(data, "'constraints'")
    _reject_unknown(section, CONSTRAINT_KEYS, "constraints")
    deadline = section.get("deadline_s")
    budget = section.get("budget_usd")
    efficiency = section.get("min_efficiency")
    if efficiency is not None:
        value = _parse_number(efficiency, "constraints.min_efficiency")
        if value > 1.0:
            raise PlanError(
                f"constraints.min_efficiency must be in (0, 1], got {value}"
            )
    return Constraints(
        deadline_s=None if deadline is None else _parse_number(deadline, "constraints.deadline_s"),
        budget_usd=None if budget is None else _parse_number(budget, "constraints.budget_usd"),
        min_efficiency=None if efficiency is None else float(efficiency),
    )


def _parse_prices(data: object) -> tuple[tuple[str, float], ...]:
    section = _require_mapping(data, "'prices'")
    parsed = {}
    for slug, value in section.items():
        if not isinstance(slug, str) or not slug:
            raise PlanError(f"price keys must be catalog slugs, got {slug!r}")
        try:
            entry = catalog.lookup(slug)
        except ReproError as error:
            raise PlanError(f"prices: {error}")
        if isinstance(entry, LinkSpec):
            raise PlanError(
                f"prices entry {slug!r} is a network link; only compute"
                " nodes carry per-hour prices"
            )
        parsed[slug] = _parse_number(value, f"prices[{slug!r}]")
    return tuple(sorted(parsed.items()))


def _candidate_nodes(spec_scenario: ScenarioSpec, search: SearchSpace) -> tuple[str, ...]:
    """Every node slug a plan's candidates may use (for price validation)."""
    if search.nodes:
        return search.nodes
    node = spec_scenario.hardware.node
    return (node,) if node is not None else ()


def parse_plan(data: Mapping) -> PlanSpec:
    """Validate a plain mapping into a :class:`PlanSpec`.

    Raises :class:`~repro.core.errors.PlanError` with a message naming
    the offending key and the valid alternatives.  The embedded scenario
    is validated by the scenario engine itself (one authority for the
    scenario schema).
    """
    document = _require_mapping(data, "a plan spec")
    allowed = (
        "plan",
        "name",
        "description",
        "scenario",
        "search",
        "objective",
        "constraints",
        "runs",
        "prices",
        "refine",
        "knee_fraction",
    )
    _reject_unknown(document, allowed, "plan")

    version = document.get("plan", PLAN_SCHEMA_VERSION)
    if version != PLAN_SCHEMA_VERSION:
        raise PlanError(
            f"unsupported plan schema version {version!r}; this planner"
            f" speaks version {PLAN_SCHEMA_VERSION}"
        )
    name = document.get("name")
    if not isinstance(name, str) or not name:
        raise PlanError("a plan needs a non-empty 'name'")
    description = document.get("description", "")
    if not isinstance(description, str):
        raise PlanError("'description' must be a string")

    if "scenario" not in document:
        raise PlanError("a plan needs a 'scenario' (builtin name, path, or document)")
    scenario_ref = document["scenario"]
    if not isinstance(scenario_ref, (str, Mapping)):
        raise PlanError(
            "'scenario' must be a builtin scenario name, a file path, or"
            " an inline scenario document"
        )
    try:
        scenario = resolve_scenario(scenario_ref)
    except ReproError as error:
        raise PlanError(f"plan scenario: {error}")
    if scenario.sweep:
        raise PlanError(
            f"plan scenario {scenario.name!r} declares its own sweep axes"
            f" {sorted(dict(scenario.sweep))}; the plan's search space is"
            " the only sweep a plan may carry"
        )

    objective = document.get("objective", "min-time")
    if objective not in OBJECTIVES:
        raise PlanError(
            f"unknown objective {objective!r}; known: {', '.join(OBJECTIVES)}"
        )

    search = _parse_search(document.get("search", {}), scenario)
    constraints = _parse_constraints(document.get("constraints", {}))
    prices = _parse_prices(document.get("prices", {}))

    runs = document.get("runs", 1)
    if isinstance(runs, bool) or not isinstance(runs, int) or runs < 1:
        raise PlanError(f"'runs' must be a positive integer, got {runs!r}")

    refine = document.get("refine", True)
    if not isinstance(refine, bool):
        raise PlanError(f"'refine' must be a boolean, got {refine!r}")

    knee_fraction = _parse_number(
        document.get("knee_fraction", 0.95), "knee_fraction"
    )
    if knee_fraction > 1.0:
        raise PlanError(f"knee_fraction must be in (0, 1], got {knee_fraction}")

    # Every candidate must be priceable: the planner always reports the
    # cost-vs-time Pareto frontier, so a plan whose candidates have no
    # resolvable positive price is an error now, not mid-optimisation.
    price_overrides = dict(prices)
    nodes = _candidate_nodes(scenario, search)
    if not nodes:
        raise PlanError(
            "a plan needs priceable compute: give the scenario a catalog"
            " hardware 'node' or list candidates under search.nodes"
        )
    for slug in nodes:
        price = resolve_price(slug, price_overrides)
        if price <= 0:
            raise PlanError(
                f"candidate node {slug!r} has no positive price; set one in"
                " the plan's 'prices' section"
            )

    spec = PlanSpec(
        name=name,
        description=description,
        scenario=scenario,
        search=search,
        objective=objective,
        constraints=constraints,
        runs=runs,
        prices=prices,
        refine=refine,
        knee_fraction=knee_fraction,
        schema_version=PLAN_SCHEMA_VERSION,
    )
    # The derived scenario must itself validate (sweepable axes, backend
    # compatibility); building it now makes `plan validate` a promise.
    derived_scenario(spec)
    return spec


def derived_scenario(plan: PlanSpec, backend: str | None = None) -> ScenarioSpec:
    """The scenario sweep that evaluates ``plan``'s whole search space.

    The plan's search axes become sweep axes of a derived scenario, so
    candidate evaluation inherits everything the scenario engine already
    guarantees: batched ``times()`` per grid point, process-pool
    parallelism, content-hash disk caching, and bit-identical serial vs
    pooled results.  ``backend`` overrides the scenario's evaluation
    backend (the CLI's ``--backend`` flag).
    """
    data = plan.scenario.to_dict()
    data["name"] = plan.name
    data["description"] = (
        f"search space of capacity plan {plan.name!r}"
        + (f": {plan.description}" if plan.description else "")
    )
    if plan.search.workers:
        grid = list(plan.search.workers)
        data["workers"] = grid
        if plan.scenario.baseline_workers not in grid:
            # Speedups need an on-grid reference; the smallest candidate
            # count is the only defensible default.
            data["baseline_workers"] = min(grid)
    sweep: dict[str, list[object]] = {}
    if plan.search.nodes:
        sweep["node"] = list(plan.search.nodes)
        # A swept node must win over any inline flops override, which the
        # hardware resolution would otherwise prefer.
        data.get("hardware", {}).pop("flops", None)
    if plan.search.links:
        sweep["link"] = list(plan.search.links)
        hardware = data.get("hardware", {})
        hardware.pop("bandwidth_bps", None)
        hardware.pop("latency_s", None)
    if plan.search.topologies:
        sweep["topology"] = list(plan.search.topologies)
    if sweep:
        data["sweep"] = sweep
    try:
        scenario = parse_scenario(data)
        if backend is not None:
            from repro.scenarios.spec import with_backend

            scenario = with_backend(scenario, backend)
    except ReproError as error:
        raise PlanError(f"plan {plan.name!r} does not compile: {error}")
    return scenario


def load_plan(path: str | Path) -> PlanSpec:
    """Load and validate a plan JSON file."""
    file_path = Path(path)
    if not file_path.exists():
        raise PlanError(f"plan file {str(file_path)!r} does not exist")
    try:
        data = json.loads(file_path.read_text())
    except OSError as error:
        raise PlanError(f"cannot read plan file {str(file_path)!r}: {error}")
    except json.JSONDecodeError as error:
        raise PlanError(f"plan file {str(file_path)!r} is not valid JSON: {error}")
    return parse_plan(data)


def builtin_plan_names() -> tuple[str, ...]:
    """Names of the bundled plan specs, sorted."""
    return tuple(sorted(p.stem for p in BUILTIN_PLAN_DIR.glob("*.json")))


def builtin_plan_path(name: str) -> Path:
    """Path of a bundled plan; raises with the valid names listed."""
    path = BUILTIN_PLAN_DIR / f"{name}.json"
    if not path.exists():
        known = ", ".join(builtin_plan_names())
        raise PlanError(f"unknown builtin plan {name!r}; known: {known}")
    return path


def load_builtin_plan(name: str) -> PlanSpec:
    """Load a bundled plan spec by name."""
    return load_plan(builtin_plan_path(name))


def resolve_plan(ref: str | Path | Mapping) -> PlanSpec:
    """Resolve a builtin name, a file path, or a raw mapping to a plan.

    Mirrors :func:`repro.scenarios.spec.resolve_scenario`: builtin names
    win over stray same-named files in the working directory; anything
    that looks like a path is treated as one.
    """
    if isinstance(ref, Mapping):
        return parse_plan(ref)
    text = str(ref)
    looks_like_path = text.endswith(".json") or "/" in text or "\\" in text
    if not looks_like_path and text in builtin_plan_names():
        return load_builtin_plan(text)
    if looks_like_path or Path(text).is_file():
        return load_plan(text)
    return load_builtin_plan(text)  # raises, listing the known builtin names
