"""The plan optimiser: evaluate the search space, prune, pick, refine.

The pipeline:

1. :func:`~repro.planner.spec.derived_scenario` turns the plan's search
   axes into a scenario sweep, so every candidate configuration is
   evaluated through the scenario engine — batched ``times()`` per grid
   point, chunked task-graph scheduling (:mod:`repro.sched`) with
   process-pool parallelism for expensive backends, content-hash disk
   caching, and bit-identical serial vs pooled payloads.
2. Each (configuration × worker count) pair becomes a priced
   :class:`~repro.planner.report.PlanPoint`; constraints mark violations.
3. The objective picks the recommended point among the feasible ones
   (deterministic total order — ties can never depend on evaluation
   order), and :func:`~repro.planner.pareto.pareto_frontier` reports
   every defensible alternative on (cost, time).
4. The chosen configuration's *analytic* model is refined beyond the
   grid with golden-section search
   (:func:`~repro.core.scaling.refine_optimal_workers`), its
   marginal-speedup-per-dollar table is tabulated, and its optimum is
   re-derived under ±20 % FLOPS/bandwidth perturbations (sensitivity).

Whatever backend evaluates the candidates (analytic, simulated,
calibrated), refinement and sensitivity always use the analytic cost
tree: they are continuous-domain questions only the closed form answers.
"""

from __future__ import annotations

import time as _time
from collections.abc import Mapping

from repro.core.errors import ModelError, PlanError
from repro.core.scaling import refine_optimal_workers
from repro.core.speedup import SpeedupCurve
from repro.planner.pareto import pareto_frontier
from repro.planner.report import PlanPoint, Recommendation
from repro.planner.spec import PlanSpec, derived_scenario
from repro.scenarios.compile import apply_overrides, compile_scenario, resolve_hardware
from repro.scenarios.spec import ScenarioSpec
from repro.scenarios.sweep import SweepResult, SweepRunner

#: The hardware perturbations of the sensitivity study (±20 %).
SENSITIVITY_FACTORS = (0.8, 1.2)


def work_units_per_run(kind: str, params: Mapping[str, object]) -> float:
    """The work accomplished by one run, in kind-appropriate units.

    Throughput (work per second) needs a numerator: samples per superstep
    for the strong-scaling gradient-descent kinds, total operations (per
    superstep × iterations, matching the modelled time) for generic BSP.
    The weak-scaling kinds model time *per training instance* and belief
    propagation one inference pass, so their unit of work is 1 —
    throughput degenerates to ``1 / t(n)``.  Units are only comparable
    within one plan (the kind is fixed across its candidates), which is
    all the objective needs.

    Because today's search axes (workers, nodes, links, topologies)
    never vary the work parameters, work units are constant across one
    plan's candidates and the ``max-throughput`` objective *selects* the
    same point as ``min-time`` — its value is the reported metric
    (``throughput_per_s`` in every payload and CSV row).  The per-kind
    cases here keep that metric honest, and keep selection correct if a
    work axis (e.g. a swept ``batch_size``) ever joins the search space.
    """
    if kind in ("gradient_descent", "spark_gradient_descent"):
        return float(params["batch_size"])  # type: ignore[arg-type]
    if kind == "bsp":
        # The bsp kind's time covers all its iterations; so must the work.
        iterations = float(params.get("iterations", 1))  # type: ignore[arg-type]
        return float(params["operations_per_superstep"]) * iterations  # type: ignore[arg-type]
    return 1.0


def point_cost_usd(
    plan: PlanSpec, node_slug: str, workers: int, time_s: float
) -> float:
    """Dollars to execute the plan's ``runs`` runs on this candidate."""
    price = plan.price_per_node_hour(node_slug)
    hours = time_s * plan.runs / 3600.0
    if plan.node_is_shared_memory(node_slug):
        return price * hours  # whole machine, however many cores run
    return workers * price * hours


def _candidate_points(
    plan: PlanSpec, scenario: ScenarioSpec, result: SweepResult
) -> list[PlanPoint]:
    """Price and constraint-check every (configuration × workers) pair."""
    base_node = plan.scenario.hardware.node or ""
    base_link = plan.scenario.hardware.link or ""
    base_topology = str(plan.scenario.algorithm.params_dict.get("topology", ""))
    if plan.scenario.algorithm.kind == "bsp" and not base_topology:
        base_topology = "tree"  # the bsp kind's documented default
    candidates: list[PlanPoint] = []
    for point in result.points:
        overrides = point["overrides"]
        node = str(overrides.get("node", base_node))
        link = str(overrides.get("link", base_link))
        topology = str(overrides.get("topology", base_topology))
        if not node:
            raise PlanError(
                f"plan {plan.name!r}: candidate has no node slug to price"
            )
        point_spec = apply_overrides(scenario, overrides)
        units = work_units_per_run(
            point_spec.algorithm.kind, point_spec.algorithm.params_dict
        )
        for n, t, s, e in zip(
            point["workers"],
            point["times_s"],
            point["speedups"],
            point["efficiencies"],
        ):
            cost = point_cost_usd(plan, node, int(n), float(t))
            violations = plan.constraints.violations(float(t), cost, float(e))
            candidates.append(
                PlanPoint(
                    node=node,
                    link=link,
                    topology=topology,
                    workers=int(n),
                    time_s=float(t),
                    speedup=float(s),
                    efficiency=float(e),
                    cost_usd=cost,
                    throughput_per_s=units / float(t),
                    violations=violations,
                )
            )
    return candidates


def _objective_key(objective: str):
    """A deterministic total order: the objective, then stable tie-breaks.

    Ties always break toward fewer dollars, then fewer seconds, then
    fewer machines, then lexicographic configuration — never toward
    whatever order the pool happened to finish in.
    """
    def config_key(point: PlanPoint):
        return (point.workers, point.node, point.link, point.topology)

    if objective == "min-time":
        return lambda p: (p.time_s, p.cost_usd) + config_key(p)
    if objective == "min-cost":
        return lambda p: (p.cost_usd, p.time_s) + config_key(p)
    if objective == "max-throughput":
        return lambda p: (-p.throughput_per_s, p.cost_usd) + config_key(p)
    raise PlanError(f"unknown objective {objective!r}")  # pragma: no cover


def _chosen_overrides(chosen: PlanPoint, plan: PlanSpec) -> dict[str, object]:
    """The sweep overrides that reproduce the chosen configuration."""
    overrides: dict[str, object] = {}
    if plan.search.nodes:
        overrides["node"] = chosen.node
    if plan.search.links:
        overrides["link"] = chosen.link
    if plan.search.topologies:
        overrides["topology"] = chosen.topology
    return overrides


def _marginal_rows(chosen_config: list[PlanPoint]) -> tuple[dict, ...]:
    """Marginal speedup per dollar along the chosen configuration's grid.

    One row per grid step: what the next increment of machines buys
    (Δspeedup) and costs (Δcost for the plan's runs).  ``speedup_per_usd``
    is omitted (None) when the step does not cost money — past the knee a
    step can even *save* money by finishing faster.
    """
    ordered = sorted(chosen_config, key=lambda p: p.workers)
    rows = []
    for before, after in zip(ordered, ordered[1:]):
        delta_speedup = after.speedup - before.speedup
        delta_cost = after.cost_usd - before.cost_usd
        rows.append(
            {
                "from_workers": before.workers,
                "to_workers": after.workers,
                "delta_speedup": delta_speedup,
                "delta_cost_usd": delta_cost,
                "speedup_per_usd": (
                    delta_speedup / delta_cost if delta_cost > 0 else None
                ),
            }
        )
    return tuple(rows)


def _sensitivity_rows(
    point_spec: ScenarioSpec, plan: PlanSpec
) -> tuple[dict, ...]:
    """The optimum under ±20 % FLOPS and bandwidth perturbations.

    Answers "how fragile is the recommendation": if −20 % bandwidth moves
    the optimal worker count materially, the decision hinges on a number
    that should be measured, not assumed.  Evaluated analytically (the
    perturbation is a what-if on the closed form).
    """
    resolved = resolve_hardware(point_spec)
    base_model = compile_scenario(point_spec)
    base_curve = base_model.curve(point_spec.workers, point_spec.baseline_workers)
    rows = [
        {
            "perturbation": "base",
            "optimal_workers": base_curve.optimal_workers,
            "peak_speedup": base_curve.peak_speedup,
        }
    ]
    axes: list[tuple[str, str]] = [("flops", "flops")]
    if resolved.bandwidth_bps is not None:
        axes.append(("bandwidth_bps", "bandwidth"))
    for hardware_key, label in axes:
        for factor in SENSITIVITY_FACTORS:
            data = point_spec.to_dict()
            hardware = dict(data.get("hardware", {}))
            # Inline values win over catalog slugs, so scaling the
            # resolved number perturbs exactly what the model consumed.
            hardware["flops"] = resolved.flops
            if resolved.bandwidth_bps is not None:
                hardware["bandwidth_bps"] = resolved.bandwidth_bps
                hardware["latency_s"] = resolved.latency_s
            base_value = resolved.flops if hardware_key == "flops" else resolved.bandwidth_bps
            hardware[hardware_key] = base_value * factor
            data["hardware"] = hardware
            from repro.scenarios.spec import parse_scenario

            perturbed = parse_scenario(data)
            curve = compile_scenario(perturbed).curve(
                perturbed.workers, perturbed.baseline_workers
            )
            rows.append(
                {
                    "perturbation": f"{label} {factor - 1.0:+.0%}",
                    "optimal_workers": curve.optimal_workers,
                    "peak_speedup": curve.peak_speedup,
                }
            )
    return tuple(rows)


def run_plan(
    plan: PlanSpec,
    runner: SweepRunner | None = None,
    backend: str | None = None,
) -> Recommendation:
    """Optimise ``plan`` and return the full recommendation report.

    ``runner`` controls evaluation (serial / process pool / caching);
    ``backend`` overrides the scenario's evaluation backend, so the same
    plan can be answered analytically, stress-checked under the simulated
    backend's jitter and stragglers, or smoothed through calibration.
    """
    started = _time.perf_counter()
    scenario = derived_scenario(plan, backend=backend)
    sweep_runner = runner or SweepRunner()
    result = sweep_runner.run(scenario)

    candidates = _candidate_points(plan, scenario, result)
    feasible = [point for point in candidates if point.feasible]
    violation_counts: dict[str, int] = {}
    for point in candidates:
        for name in point.violations:
            violation_counts[name] = violation_counts.get(name, 0) + 1

    frontier_input = [
        {"cost_usd": p.cost_usd, "time_s": p.time_s, "_index": i}
        for i, p in enumerate(candidates)
        if p.feasible
    ]
    pareto = tuple(
        candidates[entry["_index"]] for entry in pareto_frontier(frontier_input)
    )

    chosen: PlanPoint | None = None
    analytic_optimal = None
    refined = None
    knee = None
    marginal: tuple[dict, ...] = ()
    sensitivity: tuple[dict, ...] = ()
    if feasible:
        chosen = min(feasible, key=_objective_key(plan.objective))
        overrides = _chosen_overrides(chosen, plan)
        point_spec = apply_overrides(scenario, overrides)
        # The continuous-domain questions are answered on the analytic
        # cost tree of the chosen configuration, whatever backend
        # produced the discrete candidate times.
        analytic_model = compile_scenario(point_spec)
        analytic_curve = analytic_model.curve(
            point_spec.workers, point_spec.baseline_workers
        )
        analytic_optimal = analytic_curve.optimal_workers
        if plan.refine:
            try:
                refined = refine_optimal_workers(
                    analytic_model, min(point_spec.workers), max(point_spec.workers)
                )
            except ModelError:
                refined = None  # no continuation (tabulated / Monte-Carlo)
        chosen_config = sorted(
            (
                p
                for p in candidates
                if (p.node, p.link, p.topology)
                == (chosen.node, chosen.link, chosen.topology)
            ),
            key=lambda p: p.workers,
        )
        # One knee definition for the whole codebase: rebuild the chosen
        # configuration's curve (baseline from the grid, so the speedups
        # are bit-identical to the stored ones) and ask it.
        chosen_curve = SpeedupCurve.from_times(
            [p.workers for p in chosen_config],
            [p.time_s for p in chosen_config],
            baseline_workers=point_spec.baseline_workers,
        )
        knee = chosen_curve.knee(plan.knee_fraction)
        marginal = _marginal_rows(chosen_config)
        sensitivity = _sensitivity_rows(point_spec, plan)

    return Recommendation(
        plan=plan.name,
        content_hash=plan.content_hash(),
        objective=plan.objective,
        backend=scenario.backend.kind,
        runs=plan.runs,
        constraints=plan.constraints.to_dict(),
        chosen=chosen,
        pareto=pareto,
        candidates=tuple(candidates),
        analytic_optimal_workers=analytic_optimal,
        refined_workers=refined,
        knee_workers=knee,
        knee_fraction=plan.knee_fraction,
        marginal=marginal,
        sensitivity=sensitivity,
        violation_counts=violation_counts,
        stats={
            **result.stats,
            "configurations": len(result.points),
            "candidate_points": len(candidates),
            "planner_elapsed_s": _time.perf_counter() - started,
        },
    )
