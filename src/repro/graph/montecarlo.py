"""The paper's Monte-Carlo estimator of ``max_i(E_i)`` (Section IV-B).

Quoting the paper: "The number of edges per worker can be estimated via
Monte-Carlo-like simulation.  In order to do this, we randomly assign
each vertex to a worker and add its degree to the total number of edges
on the worker ``Ernd_i``.  In this way we count edges that connect
vertexes from the same worker twice."  The correction:

    Edup = 1/2 * (V/n - 1) * (V/n) * E / (V * (V - 1) / 2)

(expected number of intra-worker edges under uniform assignment, each of
which was double counted) and the per-worker estimate is
``E_i = Ernd_i - Edup``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.errors import GraphError
from repro.graph.graph import DegreeSequence, Graph
from repro.simulate.rng import stream


def expected_duplicate_edges(vertex_count: int, edge_count: int, workers: int) -> float:
    """The paper's ``Edup`` formula, verbatim.

    ``1/2 * (V/n - 1) * (V/n)`` is the number of vertex pairs inside one
    worker; multiplying by the edge probability ``E / (V(V-1)/2)`` gives
    the expected intra-worker edges (the double-counted ones).
    """
    if vertex_count < 2:
        raise GraphError(f"vertex_count must be >= 2, got {vertex_count}")
    if edge_count < 0:
        raise GraphError(f"edge_count must be non-negative, got {edge_count}")
    if workers < 1:
        raise GraphError(f"workers must be >= 1, got {workers}")
    per_worker = vertex_count / workers
    pairs_inside = 0.5 * (per_worker - 1.0) * per_worker
    edge_probability = edge_count / (vertex_count * (vertex_count - 1) / 2.0)
    # The paper's formula assumes n <= V; with more workers than vertices
    # there are no intra-worker pairs, so the correction floors at zero.
    return max(0.0, pairs_inside * edge_probability)


@dataclass(frozen=True)
class MaxEdgesEstimate:
    """Monte-Carlo estimate of the heaviest worker's edge count."""

    workers: int
    trials: int
    mean: float
    std: float
    samples: tuple[float, ...]

    @property
    def relative_std(self) -> float:
        """Coefficient of variation of the estimate."""
        if self.mean == 0:
            raise GraphError("relative_std undefined for zero mean")
        return self.std / self.mean


def estimate_max_edges(
    source: Graph | DegreeSequence,
    workers: int,
    trials: int = 10,
    seed: int = 0,
) -> MaxEdgesEstimate:
    """The paper's estimator: ``max_i(Ernd_i) - Edup`` averaged over trials.

    Only the degree sequence is consulted, so this runs at the paper's
    16M-vertex scale without materialised edges.
    """
    if workers < 1:
        raise GraphError(f"workers must be >= 1, got {workers}")
    if trials < 1:
        raise GraphError(f"trials must be >= 1, got {trials}")
    sequence = source.degree_sequence() if isinstance(source, Graph) else source
    degrees = np.asarray(sequence.degrees, dtype=np.float64)
    vertex_count = sequence.vertex_count
    edge_count = sequence.edge_count
    if workers == 1:
        # All edges on the one worker; no double counting is possible in
        # the corrected estimate: E_1 = E exactly.
        value = float(edge_count)
        return MaxEdgesEstimate(
            workers=1, trials=trials, mean=value, std=0.0, samples=(value,) * trials
        )
    duplicate = expected_duplicate_edges(vertex_count, edge_count, workers)
    rng = stream(seed, "montecarlo-max-edges")
    samples = []
    for _trial in range(trials):
        assignment = rng.integers(0, workers, size=vertex_count)
        loads = np.bincount(assignment, weights=degrees, minlength=workers)
        samples.append(float(loads.max()) - duplicate)
    samples_arr = np.asarray(samples)
    return MaxEdgesEstimate(
        workers=workers,
        trials=trials,
        mean=float(samples_arr.mean()),
        std=float(samples_arr.std()),
        samples=tuple(samples),
    )


def max_edges_curve(
    source: Graph | DegreeSequence,
    workers_grid,
    trials: int = 10,
    seed: int = 0,
) -> dict[int, float]:
    """``max_i(E_i)`` estimates across a worker grid (Figure 4's x-axis)."""
    return {
        int(workers): estimate_max_edges(source, int(workers), trials=trials, seed=seed).mean
        for workers in workers_grid
    }


def perfect_balance_edges(source: Graph | DegreeSequence, workers: int) -> float:
    """The lower bound ``E / n`` a perfectly balanced partition achieves."""
    if workers < 1:
        raise GraphError(f"workers must be >= 1, got {workers}")
    sequence = source.degree_sequence() if isinstance(source, Graph) else source
    return sequence.edge_count / workers
