"""Graph generators, including DNS-like heavy-tailed graphs.

The paper's BP experiments use a graph "based on real DNS data traffic in
a large enterprise" with 16,259,408 vertexes, 99,854,596 edges and a
maximum degree of 309,368 — a markedly heavy-tailed degree distribution.
We cannot obtain that proprietary trace, so :func:`dns_like` synthesises
power-law degree sequences calibrated to those published statistics, at
the paper's four scales (16K / 165K / 1.6M / 16M vertices).  See
DESIGN.md (Substitutions) for why this preserves the modelled behaviour:
the estimator consumes only the degree sequence.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.errors import GraphError
from repro.graph.graph import DegreeSequence, Graph

#: Published statistics of the paper's DNS graph.
DNS_VERTEX_COUNT = 16_259_408
DNS_EDGE_COUNT = 99_854_596
DNS_MAX_DEGREE = 309_368
DNS_MEAN_DEGREE = 2 * DNS_EDGE_COUNT / DNS_VERTEX_COUNT  # ~12.28

#: The paper's graph scales: Figure 4 uses 16M; Section V-B also reports
#: MAPE for 1.6M, 165K and 16K vertex graphs.
DNS_SCALES = {
    "16k": DNS_VERTEX_COUNT // 1000,
    "165k": DNS_VERTEX_COUNT // 100,
    "1.6m": DNS_VERTEX_COUNT // 10,
    "16m": DNS_VERTEX_COUNT,
}


def erdos_renyi(vertex_count: int, edge_count: int, seed: int = 0) -> Graph:
    """G(n, m): ``edge_count`` distinct uniform edges."""
    if vertex_count < 2:
        raise GraphError(f"vertex_count must be >= 2, got {vertex_count}")
    max_edges = vertex_count * (vertex_count - 1) // 2
    if not 0 <= edge_count <= max_edges:
        raise GraphError(f"edge_count must be in 0..{max_edges}, got {edge_count}")
    rng = np.random.default_rng(seed)
    chosen: dict[int, None] = {}
    while len(chosen) < edge_count:
        needed = edge_count - len(chosen)
        u = rng.integers(0, vertex_count, size=2 * needed)
        v = rng.integers(0, vertex_count, size=2 * needed)
        mask = u != v
        lo = np.minimum(u[mask], v[mask])
        hi = np.maximum(u[mask], v[mask])
        for key in lo * vertex_count + hi:
            if len(chosen) == edge_count:
                break
            chosen[int(key)] = None
    keys = np.fromiter(chosen.keys(), dtype=np.int64, count=edge_count)
    edges = np.column_stack([keys // vertex_count, keys % vertex_count])
    return Graph.from_edges(vertex_count, edges)


def barabasi_albert(vertex_count: int, attachments: int, seed: int = 0) -> Graph:
    """Preferential attachment: each new vertex links to ``attachments`` others.

    Produces the power-law degree tail typical of internet-like graphs.
    """
    if attachments < 1:
        raise GraphError(f"attachments must be >= 1, got {attachments}")
    if vertex_count <= attachments:
        raise GraphError(
            f"vertex_count must exceed attachments, got {vertex_count} <= {attachments}"
        )
    rng = np.random.default_rng(seed)
    # Repeated-node list: sampling uniformly from it is degree-proportional.
    repeated: list[int] = []
    edges: list[tuple[int, int]] = []
    # Seed clique-ish core: connect vertex i in [1, attachments] to 0..i-1.
    for vertex in range(1, attachments + 1):
        for other in range(vertex):
            edges.append((vertex, other))
            repeated.extend((vertex, other))
    for vertex in range(attachments + 1, vertex_count):
        targets: set[int] = set()
        while len(targets) < attachments:
            pick = repeated[rng.integers(0, len(repeated))]
            targets.add(pick)
        for target in targets:
            edges.append((vertex, target))
            repeated.extend((vertex, target))
    return Graph.from_edges(vertex_count, np.asarray(edges))


def grid_2d(rows: int, cols: int) -> Graph:
    """A rows x cols lattice (the classic image-denoising MRF topology)."""
    if rows < 1 or cols < 1:
        raise GraphError(f"grid dimensions must be >= 1, got {rows}x{cols}")
    ids = np.arange(rows * cols).reshape(rows, cols)
    horizontal = np.column_stack([ids[:, :-1].ravel(), ids[:, 1:].ravel()])
    vertical = np.column_stack([ids[:-1, :].ravel(), ids[1:, :].ravel()])
    edges = np.concatenate([horizontal, vertical])
    return Graph.from_edges(rows * cols, edges)


def star(leaves: int) -> Graph:
    """One hub connected to ``leaves`` leaves — the worst case for balance."""
    if leaves < 1:
        raise GraphError(f"leaves must be >= 1, got {leaves}")
    edges = np.column_stack([np.zeros(leaves, dtype=np.int64), np.arange(1, leaves + 1)])
    return Graph.from_edges(leaves + 1, edges)


def complete(vertex_count: int) -> Graph:
    """K_n."""
    if vertex_count < 2:
        raise GraphError(f"vertex_count must be >= 2, got {vertex_count}")
    pairs = np.array(
        [(u, v) for u in range(vertex_count) for v in range(u + 1, vertex_count)]
    )
    return Graph.from_edges(vertex_count, pairs)


def path(vertex_count: int) -> Graph:
    """A simple path (tree) — BP is exact here."""
    if vertex_count < 2:
        raise GraphError(f"vertex_count must be >= 2, got {vertex_count}")
    edges = np.column_stack([np.arange(vertex_count - 1), np.arange(1, vertex_count)])
    return Graph.from_edges(vertex_count, edges)


def balanced_tree(branching: int, depth: int) -> Graph:
    """A complete ``branching``-ary tree of the given depth."""
    if branching < 1 or depth < 0:
        raise GraphError(f"invalid tree shape: branching={branching} depth={depth}")
    edges = []
    next_id = 1
    frontier = [0]
    for _level in range(depth):
        new_frontier = []
        for parent in frontier:
            for _child in range(branching):
                edges.append((parent, next_id))
                new_frontier.append(next_id)
                next_id += 1
        frontier = new_frontier
    if not edges:
        raise GraphError("a tree with depth 0 has no edges; use depth >= 1")
    return Graph.from_edges(next_id, np.asarray(edges))


def power_law_degrees(
    vertex_count: int,
    mean_degree: float,
    max_degree: int,
    alpha: float = 2.1,
    min_degree: int = 1,
    seed: int = 0,
) -> DegreeSequence:
    """A power-law degree sequence calibrated to a target mean and cutoff.

    Degrees are drawn from a Pareto tail with exponent ``alpha``, rescaled
    so the sample mean matches ``mean_degree``, clipped to
    ``[min_degree, max_degree]``; the largest entry is pinned to
    ``max_degree`` to reproduce a dominant hub like the paper's DNS graph.
    """
    if vertex_count < 2:
        raise GraphError(f"vertex_count must be >= 2, got {vertex_count}")
    if mean_degree <= 0 or mean_degree >= vertex_count:
        raise GraphError(f"mean_degree must be in (0, V), got {mean_degree}")
    if max_degree < min_degree or max_degree >= vertex_count:
        raise GraphError(
            f"max_degree must be in [{min_degree}, V-1], got {max_degree}"
        )
    if alpha <= 1.0:
        raise GraphError(f"alpha must exceed 1, got {alpha}")
    rng = np.random.default_rng(seed)
    raw = (1.0 - rng.random(vertex_count)) ** (-1.0 / (alpha - 1.0))  # Pareto(alpha-1), >= 1
    scaled = raw * (mean_degree / raw.mean())
    degrees = np.clip(np.round(scaled), min_degree, max_degree).astype(np.int64)
    # Rescale once more after clipping to keep the mean close to target.
    adjustment = mean_degree / degrees.mean()
    degrees = np.clip(np.round(degrees * adjustment), min_degree, max_degree).astype(np.int64)
    degrees[np.argmax(degrees)] = max_degree
    if int(degrees.sum()) % 2 != 0:
        # Handshake lemma: bump a smallest-degree vertex by one.
        degrees[np.argmin(degrees)] += 1
    return DegreeSequence(degrees)


def configuration_model(degree_sequence: DegreeSequence, seed: int = 0) -> Graph:
    """Materialise edges for a degree sequence (configuration model).

    Stubs are shuffled and paired; self-loops and duplicate edges are
    dropped, so the realised edge count falls slightly short of the
    target for heavy-tailed sequences (a few percent; the standard erased
    configuration model).
    """
    degrees = degree_sequence.degrees
    rng = np.random.default_rng(seed)
    stubs = np.repeat(np.arange(degrees.size), degrees)
    rng.shuffle(stubs)
    if stubs.size % 2 != 0:
        raise GraphError("degree sum must be even")
    pairs = stubs.reshape(-1, 2)
    mask = pairs[:, 0] != pairs[:, 1]
    pairs = pairs[mask]
    lo = np.minimum(pairs[:, 0], pairs[:, 1])
    hi = np.maximum(pairs[:, 0], pairs[:, 1])
    keys = lo * degrees.size + hi
    _, unique_index = np.unique(keys, return_index=True)
    deduped = pairs[np.sort(unique_index)]
    return Graph.from_edges(degrees.size, deduped)


@dataclass(frozen=True)
class DnsLikeGraph:
    """A DNS-scale workload: always a degree sequence, edges when feasible."""

    scale: str
    degree_sequence: DegreeSequence
    graph: Graph | None


def dns_like(scale: str = "16k", seed: int = 0, materialize_limit: int = 2_000_000) -> DnsLikeGraph:
    """A synthetic stand-in for the paper's enterprise DNS graph.

    ``scale`` is one of ``"16k"``, ``"165k"``, ``"1.6m"``, ``"16m"``.
    Mean degree matches the paper's 12.28 at every scale; the hub degree
    scales proportionally (exactly 309,368 at full scale).  Edge lists
    are materialised only up to ``materialize_limit`` vertices — the
    16M-scale sequence stays degrees-only, which is all the Figure 4
    estimator needs.
    """
    if scale not in DNS_SCALES:
        raise GraphError(f"unknown scale {scale!r}; choose from {sorted(DNS_SCALES)}")
    vertex_count = DNS_SCALES[scale]
    max_degree = max(2, int(round(DNS_MAX_DEGREE * vertex_count / DNS_VERTEX_COUNT)))
    sequence = power_law_degrees(
        vertex_count=vertex_count,
        mean_degree=DNS_MEAN_DEGREE,
        max_degree=max_degree,
        alpha=2.1,
        seed=seed,
    )
    graph = None
    if vertex_count <= materialize_limit:
        graph = configuration_model(sequence, seed=seed + 1)
    return DnsLikeGraph(scale=scale, degree_sequence=sequence, graph=graph)
