"""Graph data structures: CSR adjacency and bare degree sequences.

The paper's graphical-model analysis needs two levels of fidelity:

* an actual edge list (to run belief propagation and to compute exact
  replication factors) — :class:`Graph`, stored in compressed sparse row
  form;
* only the *degree sequence* (the Monte-Carlo ``max_i(E_i)`` estimator
  sums degrees of randomly assigned vertices) — :class:`DegreeSequence`,
  which scales to the paper's 16M-vertex graph without materialising
  100M edges.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.errors import GraphError


@dataclass(frozen=True)
class DegreeSequence:
    """Vertex degrees of an undirected graph, without the edges."""

    degrees: np.ndarray

    def __post_init__(self) -> None:
        degrees = np.asarray(self.degrees)
        if degrees.ndim != 1:
            raise GraphError(f"degrees must be a vector, got shape {degrees.shape}")
        if degrees.size == 0:
            raise GraphError("a degree sequence needs at least one vertex")
        if np.any(degrees < 0):
            raise GraphError("degrees must be non-negative")
        if int(degrees.sum()) % 2 != 0:
            raise GraphError("degree sum must be even (handshake lemma)")

    @property
    def vertex_count(self) -> int:
        """Number of vertices ``V``."""
        return int(self.degrees.size)

    @property
    def edge_count(self) -> int:
        """Number of undirected edges ``E`` (half the degree sum)."""
        return int(self.degrees.sum()) // 2

    @property
    def max_degree(self) -> int:
        """Largest vertex degree."""
        return int(self.degrees.max())

    @property
    def mean_degree(self) -> float:
        """Average degree ``2E / V``."""
        return float(self.degrees.mean())


class Graph:
    """An undirected graph in CSR form.

    ``indptr``/``indices`` follow the scipy convention: the neighbours of
    vertex ``v`` are ``indices[indptr[v]:indptr[v+1]]``.  Every undirected
    edge appears in both endpoint lists.
    """

    def __init__(self, indptr: np.ndarray, indices: np.ndarray):
        indptr = np.asarray(indptr, dtype=np.int64)
        indices = np.asarray(indices, dtype=np.int64)
        if indptr.ndim != 1 or indptr.size < 2:
            raise GraphError("indptr must be a vector with at least two entries")
        if indptr[0] != 0 or indptr[-1] != indices.size:
            raise GraphError("indptr must start at 0 and end at len(indices)")
        if np.any(np.diff(indptr) < 0):
            raise GraphError("indptr must be non-decreasing")
        vertex_count = indptr.size - 1
        if indices.size and (indices.min() < 0 or indices.max() >= vertex_count):
            raise GraphError("indices reference vertices out of range")
        if indices.size % 2 != 0:
            raise GraphError("directed half-edge count must be even for an undirected graph")
        self.indptr = indptr
        self.indices = indices

    @classmethod
    def from_edges(cls, vertex_count: int, edges: np.ndarray) -> "Graph":
        """Build from an ``(m, 2)`` array of undirected edges.

        Self-loops and duplicate edges are rejected: the paper's MRF model
        is a simple graph.
        """
        if vertex_count < 1:
            raise GraphError(f"vertex_count must be >= 1, got {vertex_count}")
        edges = np.asarray(edges, dtype=np.int64).reshape(-1, 2)
        if edges.size and (edges.min() < 0 or edges.max() >= vertex_count):
            raise GraphError("edge endpoints out of range")
        if edges.size and np.any(edges[:, 0] == edges[:, 1]):
            raise GraphError("self-loops are not allowed")
        if edges.size:
            canonical = np.sort(edges, axis=1)
            keys = canonical[:, 0] * vertex_count + canonical[:, 1]
            if np.unique(keys).size != keys.size:
                raise GraphError("duplicate edges are not allowed")
        # Symmetrise: each undirected edge contributes two directed arcs.
        sources = np.concatenate([edges[:, 0], edges[:, 1]])
        targets = np.concatenate([edges[:, 1], edges[:, 0]])
        order = np.argsort(sources, kind="stable")
        sorted_sources = sources[order]
        sorted_targets = targets[order]
        counts = np.bincount(sorted_sources, minlength=vertex_count)
        indptr = np.concatenate([[0], np.cumsum(counts)])
        return cls(indptr, sorted_targets)

    @property
    def vertex_count(self) -> int:
        """Number of vertices ``V``."""
        return int(self.indptr.size - 1)

    @property
    def edge_count(self) -> int:
        """Number of undirected edges ``E``."""
        return int(self.indices.size) // 2

    @property
    def degrees(self) -> np.ndarray:
        """Degree of every vertex."""
        return np.diff(self.indptr)

    @property
    def max_degree(self) -> int:
        """Largest vertex degree."""
        if self.vertex_count == 0:
            return 0
        return int(self.degrees.max())

    def degree(self, vertex: int) -> int:
        """Degree of one vertex."""
        self._check_vertex(vertex)
        return int(self.indptr[vertex + 1] - self.indptr[vertex])

    def neighbors(self, vertex: int) -> np.ndarray:
        """Neighbour ids of ``vertex`` (a CSR view; do not mutate)."""
        self._check_vertex(vertex)
        return self.indices[self.indptr[vertex] : self.indptr[vertex + 1]]

    def has_edge(self, u: int, v: int) -> bool:
        """Whether the undirected edge ``{u, v}`` exists."""
        self._check_vertex(u)
        self._check_vertex(v)
        return bool(np.isin(v, self.neighbors(u)).item())

    def edges(self) -> np.ndarray:
        """All undirected edges as an ``(E, 2)`` array with ``u < v``."""
        sources = np.repeat(np.arange(self.vertex_count), self.degrees)
        mask = sources < self.indices
        return np.column_stack([sources[mask], self.indices[mask]])

    def degree_sequence(self) -> DegreeSequence:
        """Degrees only (for scale-insensitive estimators)."""
        return DegreeSequence(self.degrees)

    def _check_vertex(self, vertex: int) -> None:
        if not 0 <= vertex < self.vertex_count:
            raise GraphError(f"vertex {vertex} out of range 0..{self.vertex_count - 1}")

    def __repr__(self) -> str:
        return f"Graph(V={self.vertex_count}, E={self.edge_count})"
