"""Degree-distribution statistics for generated graphs."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.errors import GraphError
from repro.graph.graph import DegreeSequence, Graph


@dataclass(frozen=True)
class DegreeStats:
    """Headline shape statistics of a degree distribution."""

    vertex_count: int
    edge_count: int
    mean_degree: float
    max_degree: int
    median_degree: float
    degree_gini: float


def _sequence(source: Graph | DegreeSequence) -> DegreeSequence:
    return source.degree_sequence() if isinstance(source, Graph) else source


def degree_stats(source: Graph | DegreeSequence) -> DegreeStats:
    """Summary statistics (used to check DNS-like calibration)."""
    sequence = _sequence(source)
    degrees = np.asarray(sequence.degrees, dtype=np.float64)
    return DegreeStats(
        vertex_count=sequence.vertex_count,
        edge_count=sequence.edge_count,
        mean_degree=float(degrees.mean()),
        max_degree=int(degrees.max()),
        median_degree=float(np.median(degrees)),
        degree_gini=gini(degrees),
    )


def gini(values: np.ndarray) -> float:
    """Gini coefficient — 0 for uniform degrees, -> 1 for hub-dominated."""
    values = np.sort(np.asarray(values, dtype=np.float64))
    if values.size == 0:
        raise GraphError("gini of an empty vector is undefined")
    if np.any(values < 0):
        raise GraphError("gini requires non-negative values")
    total = values.sum()
    if total == 0:
        return 0.0
    ranks = np.arange(1, values.size + 1)
    return float((2.0 * np.sum(ranks * values)) / (values.size * total) - (values.size + 1) / values.size)


def power_law_alpha_mle(source: Graph | DegreeSequence, min_degree: int = 2) -> float:
    """Maximum-likelihood power-law exponent for the degree tail.

    Uses the continuous Hill estimator ``alpha = 1 + n / sum(ln(d/dmin))``
    over degrees ``>= min_degree``.
    """
    if min_degree < 1:
        raise GraphError(f"min_degree must be >= 1, got {min_degree}")
    degrees = np.asarray(_sequence(source).degrees, dtype=np.float64)
    tail = degrees[degrees >= min_degree]
    if tail.size < 10:
        raise GraphError(f"need at least 10 tail degrees >= {min_degree}, got {tail.size}")
    return float(1.0 + tail.size / np.sum(np.log(tail / min_degree)))
