"""Vertex partitioning across workers, with the paper's load accounting.

The paper parallelises graph inference by processing vertices on workers;
the computation time of a superstep is gated by the worker holding the
most *edge work* (``max_i(E_i)``).  This module provides:

* partitioners — random (what the paper models), hash, block, and a
  greedy degree-balanced baseline (LPT scheduling);
* exact per-worker load accounting on materialised graphs: degree loads
  (``Ernd_i``: intra-worker edges counted twice), distinct incident
  edges (the paper's corrected ``E_i``), and the replication factor ``r``
  that drives the communication term ``tcm = 32/B * r * V * S``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.errors import PartitionError
from repro.graph.graph import Graph


@dataclass(frozen=True)
class VertexPartition:
    """An assignment of every vertex to one of ``workers`` workers."""

    assignment: np.ndarray
    workers: int

    def __post_init__(self) -> None:
        assignment = np.asarray(self.assignment)
        if assignment.ndim != 1 or assignment.size == 0:
            raise PartitionError("assignment must be a non-empty vector")
        if self.workers < 1:
            raise PartitionError(f"workers must be >= 1, got {self.workers}")
        if assignment.min() < 0 or assignment.max() >= self.workers:
            raise PartitionError("assignment references workers out of range")

    @property
    def vertex_count(self) -> int:
        """Number of assigned vertices."""
        return int(self.assignment.size)

    def vertices_of(self, worker: int) -> np.ndarray:
        """Vertex ids owned by ``worker``."""
        if not 0 <= worker < self.workers:
            raise PartitionError(f"worker {worker} out of range 0..{self.workers - 1}")
        return np.flatnonzero(self.assignment == worker)

    def counts(self) -> np.ndarray:
        """Vertices per worker."""
        return np.bincount(self.assignment, minlength=self.workers)


def random_partition(vertex_count: int, workers: int, seed: int = 0) -> VertexPartition:
    """Uniform random assignment — the scheme the paper's estimator models."""
    if vertex_count < 1:
        raise PartitionError(f"vertex_count must be >= 1, got {vertex_count}")
    if workers < 1:
        raise PartitionError(f"workers must be >= 1, got {workers}")
    rng = np.random.default_rng(seed)
    return VertexPartition(rng.integers(0, workers, size=vertex_count), workers)


def hash_partition(vertex_count: int, workers: int) -> VertexPartition:
    """Deterministic hash assignment (multiplicative hashing of vertex ids)."""
    if vertex_count < 1:
        raise PartitionError(f"vertex_count must be >= 1, got {vertex_count}")
    if workers < 1:
        raise PartitionError(f"workers must be >= 1, got {workers}")
    ids = np.arange(vertex_count, dtype=np.uint64)
    hashed = (ids * np.uint64(0x9E3779B97F4A7C15)) >> np.uint64(17)
    return VertexPartition((hashed % np.uint64(workers)).astype(np.int64), workers)


def block_partition(vertex_count: int, workers: int) -> VertexPartition:
    """Contiguous ranges — what a naive split of a sorted vertex file does."""
    if vertex_count < 1:
        raise PartitionError(f"vertex_count must be >= 1, got {vertex_count}")
    if workers < 1:
        raise PartitionError(f"workers must be >= 1, got {workers}")
    assignment = (np.arange(vertex_count) * workers) // vertex_count
    return VertexPartition(assignment.astype(np.int64), workers)


def greedy_balanced_partition(degrees: np.ndarray, workers: int) -> VertexPartition:
    """Longest-processing-time: heaviest vertices first to the lightest worker.

    A strong balance baseline for the ablation benches — it nearly
    eliminates the imbalance that caps the paper's BP speedup, at the cost
    of a global sort.
    """
    degrees = np.asarray(degrees)
    if degrees.ndim != 1 or degrees.size == 0:
        raise PartitionError("degrees must be a non-empty vector")
    if workers < 1:
        raise PartitionError(f"workers must be >= 1, got {workers}")
    order = np.argsort(degrees)[::-1]
    assignment = np.empty(degrees.size, dtype=np.int64)
    loads = np.zeros(workers)
    # A binary heap of (load, worker) would be asymptotically better; for
    # the worker counts in the paper (<= 80) an argmin scan is faster.
    for vertex in order:
        worker = int(np.argmin(loads))
        assignment[vertex] = worker
        loads[worker] += degrees[vertex]
    return VertexPartition(assignment, workers)


def degree_loads(partition: VertexPartition, degrees: np.ndarray) -> np.ndarray:
    """Per-worker degree sums — the paper's raw ``Ernd_i``.

    Each intra-worker edge is counted twice (once per endpoint), which is
    exactly the double-counting the paper's ``Edup`` term corrects.
    """
    degrees = np.asarray(degrees)
    if degrees.size != partition.vertex_count:
        raise PartitionError(
            f"degrees for {degrees.size} vertices do not match partition of {partition.vertex_count}"
        )
    return np.bincount(partition.assignment, weights=degrees, minlength=partition.workers)


def incident_edges_per_worker(graph: Graph, partition: VertexPartition) -> np.ndarray:
    """Exact distinct-edge counts per worker (the quantity ``E_i`` estimates).

    An edge counts once for each distinct worker among its endpoints:
    intra-worker edges count once for that worker, cut edges once for
    each side (both workers must process the message).
    """
    if partition.vertex_count != graph.vertex_count:
        raise PartitionError("partition does not match the graph's vertex count")
    edges = graph.edges()
    left = partition.assignment[edges[:, 0]]
    right = partition.assignment[edges[:, 1]]
    counts = np.bincount(left, minlength=partition.workers).astype(np.int64)
    cross = left != right
    counts += np.bincount(right[cross], minlength=partition.workers)
    return counts


def replication_factor(graph: Graph, partition: VertexPartition) -> float:
    """The paper's ``r``: replicated vertex copies per original vertex.

    A worker must fetch (replicate) every remote vertex adjacent to one of
    its own vertices; ``r = (sum over workers of distinct remote
    neighbours) / V``, so ``r * V`` vertices' states cross the network per
    superstep — the paper's ``tcm = 32/B * r * V * S``.
    """
    if partition.vertex_count != graph.vertex_count:
        raise PartitionError("partition does not match the graph's vertex count")
    if partition.workers == 1:
        return 0.0
    edges = graph.edges()
    left = partition.assignment[edges[:, 0]]
    right = partition.assignment[edges[:, 1]]
    cross = left != right
    if not np.any(cross):
        return 0.0
    # Distinct (owning worker, remote vertex) pairs, both directions.
    owner = np.concatenate([left[cross], right[cross]]).astype(np.int64)
    remote = np.concatenate([edges[cross, 1], edges[cross, 0]]).astype(np.int64)
    keys = owner * graph.vertex_count + remote
    replicas = np.unique(keys).size
    return float(replicas) / graph.vertex_count


@dataclass(frozen=True)
class PartitionStats:
    """Balance summary of one partition against one graph."""

    workers: int
    max_load: float
    mean_load: float
    imbalance: float
    replication: float

    @classmethod
    def of(cls, graph: Graph, partition: VertexPartition) -> "PartitionStats":
        """Compute all statistics for ``partition`` on ``graph``."""
        loads = incident_edges_per_worker(graph, partition)
        mean = float(loads.mean())
        if mean == 0:
            raise PartitionError("graph has no edges; balance is undefined")
        return cls(
            workers=partition.workers,
            max_load=float(loads.max()),
            mean_load=mean,
            imbalance=float(loads.max()) / mean,
            replication=replication_factor(graph, partition),
        )
