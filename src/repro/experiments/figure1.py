"""Figure 1 reproduction: the illustrative speedup example.

The paper's first figure shows a generic strong-scaling speedup curve:
per-node computation falls with ``n``, communication rises, and "speedup
does not grow indefinitely and starts to decrease at around 14 nodes".
We reproduce it with a generic gradient-descent model whose constants
put the analytic optimum at 14 (compute 10 s at one node, 0.25 s per
tree round: the continuous optimum of ``10/n + 0.5 log2 n`` is
``10 ln 2 / 0.5 ~ 13.9``).
"""

from __future__ import annotations

from repro.experiments.reference import FIGURE1_PEAK_WORKERS
from repro.experiments.runner import ExperimentResult, register
from repro.models.gradient_descent import GradientDescentModel

#: Constants chosen to land the knee at the paper's ~14 nodes.
EXAMPLE_MODEL = GradientDescentModel(
    operations_per_sample=1e7,
    batch_size=1000,
    flops=1e9,
    parameters=7.8125e6,  # 32 W / B = 0.25 s per tree round
    bandwidth_bps=1e9,
    bits_per_parameter=32,
)


@register("figure1")
def run(quick: bool = False) -> ExperimentResult:
    """Generate the example speedup curve with its component breakdown.

    The grid, its decomposition and the speedups are batched evaluations
    of the model's cost-term tree — no per-``n`` Python loop.
    """
    grid = list(range(1, 33))
    curve = EXAMPLE_MODEL.curve(grid)
    components = EXAMPLE_MODEL.decompose(grid)
    rows = []
    for index, (workers, time_s, speedup) in enumerate(
        zip(curve.workers, curve.times, curve.speedups)
    ):
        rows.append(
            {
                "workers": workers,
                "computation_s": float(components["computation"][index]),
                "communication_s": float(components["communication"][index]),
                "time_s": time_s,
                "speedup": speedup,
            }
        )
    peak = curve.optimal_workers
    return ExperimentResult(
        experiment="figure1",
        description="Example of the speedup (generic strong scaling)",
        rows=rows,
        metrics={
            "peak_workers": float(peak),
            "paper_peak_workers": float(FIGURE1_PEAK_WORKERS),
            "peak_speedup": EXAMPLE_MODEL.speedup(peak),
        },
        notes=[
            "Computation time falls as 1/n while communication rises as"
            " log2(n); their sum is minimised at ~14 nodes, matching the"
            " paper's narrative for Figure 1.",
        ],
    )
