"""Figure 4 reproduction: BP speedup on DNS-like graphs.

Model: the paper's Monte-Carlo estimate of ``max_i(E_i)`` turned into a
speedup curve (``F`` and ``c(S)`` cancel).  Experiment: concrete random
assignments timed on the GraphLab-effective DL980 machine model, with
the engine overhead that the paper observed "taking over with larger
number of workers".

``figure4`` runs the paper's headline 16M-vertex scale on the
degree-sequence representation; ``figure4-small`` covers the 16K / 165K
(and, outside quick mode, 1.6M) scales with materialised edges, matching
Section V-B's extra experiments.
"""

from __future__ import annotations

from repro.core.metrics import mape
from repro.distributed.graph_inference import graphlab_dl980, measure_bp_iterations
from repro.experiments.reference import FIGURE4, FIGURE4_SMALL_GRAPH_MAPE, MAPE_ACCEPTANCE
from repro.experiments.runner import ExperimentResult, register
from repro.graph.generators import dns_like
from repro.models.belief_propagation import BeliefPropagationModel

#: Worker grid up to the DL980's 80 cores.
WORKER_GRID = (1, 2, 4, 8, 16, 32, 48, 64, 80)


def _compare_scale(
    scale: str, trials: int, seed: int = 0
) -> tuple[list[dict[str, object]], dict[str, float]]:
    """Model-vs-experiment speedups for one graph scale."""
    workload = dns_like(scale, seed=seed)
    source = workload.graph if workload.graph is not None else workload.degree_sequence
    machine = graphlab_dl980()

    model = BeliefPropagationModel.from_source(
        workload.degree_sequence,
        WORKER_GRID,
        states=int(FIGURE4["states"]),
        flops=machine.core_flops,
        trials=trials,
        seed=seed,
    )
    measured = measure_bp_iterations(source, WORKER_GRID, machine=machine, seed=seed + 100)

    # One batched evaluation per curve (model term tree / measurement table).
    model_speedups = list(model.curve(WORKER_GRID).speedups)
    measured_speedups = list(measured.curve(WORKER_GRID).speedups)
    rows = []
    for n, model_s, measured_s in zip(WORKER_GRID, model_speedups, measured_speedups):
        rows.append(
            {
                "scale": scale,
                "workers": n,
                "model_speedup": model_s,
                "experiment_speedup": measured_s,
            }
        )
    metrics = {
        "mape_pct": mape(measured_speedups, model_speedups),
        "model_speedup_80": model_speedups[-1],
        "experiment_speedup_80": measured_speedups[-1],
    }
    return rows, metrics


@register("figure4")
def run(quick: bool = False) -> ExperimentResult:
    """The headline 16M-vertex study (16K in quick mode)."""
    scale = "16k" if quick else "16m"
    trials = 3 if quick else 5
    rows, metrics = _compare_scale(scale, trials=trials)
    metrics["paper_mape_pct"] = float(FIGURE4["mape_pct"])
    metrics["mape_acceptance_pct"] = MAPE_ACCEPTANCE["figure4"]
    return ExperimentResult(
        experiment="figure4",
        description=f"Speedup of the BP algorithm, DNS-like graph ({scale} scale)",
        rows=rows,
        metrics=metrics,
        notes=[
            "The paper reports MAPE 25.4% on the 16M-vertex graph: the"
            " random-assignment model is conservative at few workers while"
            " execution overhead takes over at many workers.  The same two"
            " regimes appear here (experiment above model early, below at"
            " 64-80 cores).",
            "The 16M-scale run uses the degree-sequence representation;"
            " the estimator consumes only degrees, so no 100M-edge list is"
            " materialised (see DESIGN.md).",
        ],
    )


@register("figure4-small")
def run_small(quick: bool = False) -> ExperimentResult:
    """Section V-B's smaller graphs: 16K, 165K (and 1.6M in full mode)."""
    scales = ["16k", "165k"] if quick else ["16k", "165k", "1.6m"]
    trials = 3 if quick else 5
    rows: list[dict[str, object]] = []
    metrics: dict[str, float] = {}
    for scale in scales:
        scale_rows, scale_metrics = _compare_scale(scale, trials=trials)
        rows.extend(scale_rows)
        metrics[f"mape_pct_{scale}"] = scale_metrics["mape_pct"]
        paper_value = FIGURE4_SMALL_GRAPH_MAPE.get(scale)
        if paper_value is not None:
            metrics[f"paper_mape_pct_{scale}"] = paper_value
    return ExperimentResult(
        experiment="figure4-small",
        description="BP speedup on the paper's smaller graph scales",
        rows=rows,
        metrics=metrics,
        notes=[
            "Paper MAPEs: 23.5% (16K), 19.6% (165K), 26% (1.6M) — the"
            " acceptance criterion is the same band, not the same digit.",
        ],
    )
