"""Experiment drivers reproducing every table and figure of the paper.

Beyond the hard-coded figure/table drivers, every bundled scenario spec
(see :mod:`repro.scenarios`) is registered as ``scenario-<name>``, so the
declarative engine's runs are listed and launched the same way.
"""

from repro.experiments import (  # noqa: F401  (registration)
    figure1,
    figure2,
    figure3,
    figure4,
    planning,
    table1,
)
from repro.scenarios.bridge import register_builtin_scenarios
from repro.experiments.plotting import render_chart, render_table
from repro.experiments.reference import (
    FIGURE1_PEAK_WORKERS,
    FIGURE2,
    FIGURE3,
    FIGURE4,
    FIGURE4_SMALL_GRAPH_MAPE,
    MAPE_ACCEPTANCE,
    TABLE1,
)
from repro.experiments.runner import (
    ExperimentResult,
    experiment_ids,
    run_all,
    run_experiment,
)

register_builtin_scenarios()

__all__ = [
    "render_chart",
    "render_table",
    "FIGURE1_PEAK_WORKERS",
    "FIGURE2",
    "FIGURE3",
    "FIGURE4",
    "FIGURE4_SMALL_GRAPH_MAPE",
    "MAPE_ACCEPTANCE",
    "TABLE1",
    "ExperimentResult",
    "experiment_ids",
    "run_all",
    "run_experiment",
]
