"""Shared experiment-result container and the run-everything entry point."""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field

from repro.core.errors import ExperimentError
from repro.experiments.plotting import render_table


@dataclass(frozen=True)
class ExperimentResult:
    """Structured outcome of one reproduced table or figure.

    ``rows`` is the tabular payload (what the paper's artifact shows);
    ``metrics`` carries headline numbers (MAPE, optimal workers, ...);
    ``notes`` records paper-vs-reproduction commentary for the report.
    """

    experiment: str
    description: str
    rows: list[dict[str, object]]
    metrics: dict[str, float]
    notes: list[str] = field(default_factory=list)

    def render(self) -> str:
        """Human-readable report block."""
        lines = [f"== {self.experiment}: {self.description}", ""]
        if self.rows:
            lines.append(render_table(self.rows))
            lines.append("")
        if self.metrics:
            for key in sorted(self.metrics):
                lines.append(f"  {key} = {self.metrics[key]:.4g}")
            lines.append("")
        for note in self.notes:
            lines.append(f"  note: {note}")
        return "\n".join(lines)


#: Registry of experiment ids to zero-argument (quick-mode aware) runners.
_REGISTRY: dict[str, Callable[[bool], ExperimentResult]] = {}


def register_runner(
    experiment_id: str, fn: Callable[[bool], ExperimentResult]
) -> Callable[[bool], ExperimentResult]:
    """Register any ``fn(quick: bool) -> ExperimentResult`` under an id.

    The function form of :func:`register`, for runners built at runtime —
    the scenario bridge uses it to register every bundled scenario spec
    as an experiment.
    """
    if experiment_id in _REGISTRY:
        raise ExperimentError(f"duplicate experiment id {experiment_id!r}")
    _REGISTRY[experiment_id] = fn
    return fn


def register(experiment_id: str) -> Callable:
    """Decorator: register ``fn(quick: bool) -> ExperimentResult``."""

    def wrap(fn: Callable[[bool], ExperimentResult]) -> Callable[[bool], ExperimentResult]:
        return register_runner(experiment_id, fn)

    return wrap


def experiment_ids() -> tuple[str, ...]:
    """All registered experiment ids, sorted."""
    return tuple(sorted(_REGISTRY))


def run_experiment(experiment_id: str, quick: bool = False) -> ExperimentResult:
    """Run one experiment by id."""
    if experiment_id not in _REGISTRY:
        known = ", ".join(experiment_ids())
        raise ExperimentError(f"unknown experiment {experiment_id!r}; known: {known}")
    return _REGISTRY[experiment_id](quick)


def run_all(quick: bool = False) -> list[ExperimentResult]:
    """Run every registered experiment, in id order."""
    return [run_experiment(experiment_id, quick) for experiment_id in experiment_ids()]
