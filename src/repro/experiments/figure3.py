"""Figure 3 reproduction: per-instance speedup of Inception v3 (weak scaling).

Model: the paper's ``t = ((C*S)/F + 2*(32W/B) log n)/n``, evaluated
relative to 50 workers (the figure's baseline).  Experiment: the
TensorFlow-like GPU runtime on the discrete-event cluster, standing in
for Chen et al.'s K40 cluster.
"""

from __future__ import annotations

from repro.core.metrics import mape
from repro.distributed.tensorflow_like import measure_inception_per_instance
from repro.experiments.reference import FIGURE3, MAPE_ACCEPTANCE
from repro.experiments.runner import ExperimentResult, register
from repro.models.deep_learning import (
    chen_inception_figure3_model,
    chen_inception_linear_comm_model,
)

#: Chen et al. report sync mini-batch SGD at these cluster sizes.
WORKER_GRID = (25, 50, 100, 200)


@register("figure3")
def run(quick: bool = False) -> ExperimentResult:
    """Model-vs-simulated-experiment per-instance speedup vs 50 workers."""
    baseline = int(FIGURE3["baseline_workers"])
    iterations = 2 if quick else 4

    model = chen_inception_figure3_model()
    linear_model = chen_inception_linear_comm_model()
    measured = measure_inception_per_instance(WORKER_GRID, iterations=iterations, seed=0)

    # Batched curves relative to the figure's 50-worker baseline.
    model_speedups = list(model.curve(WORKER_GRID, baseline).speedups)
    measured_speedups = list(measured.curve(WORKER_GRID, baseline).speedups)
    linear_speedups = list(linear_model.curve(WORKER_GRID, baseline).speedups)

    rows = []
    for n, model_s, measured_s, linear_s in zip(
        WORKER_GRID, model_speedups, measured_speedups, linear_speedups
    ):
        rows.append(
            {
                "workers": n,
                "model_speedup_vs_50": model_s,
                "experiment_speedup_vs_50": measured_s,
                "linear_comm_model_vs_50": linear_s,
            }
        )

    return ExperimentResult(
        experiment="figure3",
        description=(
            "Speedup of processing time per training instance, convolutional ANN"
            " (relative to 50 nodes)"
        ),
        rows=rows,
        metrics={
            "mape_pct": mape(measured_speedups, model_speedups),
            "paper_mape_pct": float(FIGURE3["mape_pct"]),
            "mape_acceptance_pct": MAPE_ACCEPTANCE["figure3"],
            "speedup_200_vs_50_model": model_speedups[-1],
            "speedup_200_vs_50_experiment": measured_speedups[-1],
        },
        notes=[
            "The logarithmic communication model keeps scaling (infinite weak"
            " scaling); the linear-communication column saturates — the"
            " contrast Section V-A draws.",
        ],
    )
