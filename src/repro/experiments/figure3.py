"""Figure 3 reproduction: per-instance speedup of Inception v3 (weak scaling).

Model: the paper's ``t = ((C*S)/F + 2*(32W/B) log n)/n``, evaluated
relative to 50 workers (the figure's baseline).  Experiment: the same
scenario spec (``builtin/figure3.json``) re-targeted at the simulated
backend — a TensorFlow-like configuration (light in-process overhead,
steady GPU kernels) standing in for Chen et al.'s K40 cluster.  The
linear-communication contrast model of Section V-A rides along as a
third column.
"""

from __future__ import annotations

from repro.core.metrics import mape
from repro.experiments.reference import FIGURE3, MAPE_ACCEPTANCE
from repro.experiments.runner import ExperimentResult, register
from repro.models.deep_learning import chen_inception_linear_comm_model
from repro.scenarios.compile import compile_point
from repro.scenarios.spec import load_builtin, with_backend


@register("figure3")
def run(quick: bool = False) -> ExperimentResult:
    """Model-vs-simulated-experiment per-instance speedup vs 50 workers."""
    spec = load_builtin("figure3")
    grid = list(spec.workers)
    baseline = int(FIGURE3["baseline_workers"])

    model_target, analytic = compile_point(spec)
    simulated_spec = with_backend(spec, "simulated", iterations=2 if quick else 4)
    simulated_target, simulated = compile_point(simulated_spec)
    linear_model = chen_inception_linear_comm_model()

    # Batched curves relative to the figure's 50-worker baseline.
    model_speedups = list(analytic.curve(model_target, grid, baseline).speedups)
    measured_speedups = list(simulated.curve(simulated_target, grid, baseline).speedups)
    linear_speedups = list(linear_model.curve(grid, baseline).speedups)

    rows = []
    for n, model_s, measured_s, linear_s in zip(
        grid, model_speedups, measured_speedups, linear_speedups
    ):
        rows.append(
            {
                "workers": n,
                "model_speedup_vs_50": model_s,
                "experiment_speedup_vs_50": measured_s,
                "linear_comm_model_vs_50": linear_s,
            }
        )

    return ExperimentResult(
        experiment="figure3",
        description=(
            "Speedup of processing time per training instance, convolutional ANN"
            " (relative to 50 nodes)"
        ),
        rows=rows,
        metrics={
            "mape_pct": mape(measured_speedups, model_speedups),
            "paper_mape_pct": float(FIGURE3["mape_pct"]),
            "mape_acceptance_pct": MAPE_ACCEPTANCE["figure3"],
            "speedup_200_vs_50_model": model_speedups[-1],
            "speedup_200_vs_50_experiment": measured_speedups[-1],
        },
        notes=[
            "The logarithmic communication model keeps scaling (infinite weak"
            " scaling); the linear-communication column saturates — the"
            " contrast Section V-A draws.",
            "Model and experiment are the same scenario spec evaluated"
            " through two backends; `repro-experiments scenario run figure3"
            " --backend simulated` reproduces the experimental column.",
        ],
    )
