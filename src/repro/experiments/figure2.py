"""Figure 2 reproduction: speedup of one iteration, FC ANN on Spark.

Model: :func:`repro.models.deep_learning.spark_mnist_figure2_model` (the
paper's exact formula).  Experiment: the Spark-like runtime on the
discrete-event cluster (:mod:`repro.distributed.spark_like`), standing in
for the paper's physical Xeon/1GbE cluster.  The comparison metric is
the paper's: MAPE between model and experimental *speedups*.
"""

from __future__ import annotations

from repro.core.metrics import mape
from repro.distributed.spark_like import measure_fc_iterations
from repro.experiments.reference import FIGURE2, MAPE_ACCEPTANCE
from repro.experiments.runner import ExperimentResult, register
from repro.models.deep_learning import spark_mnist_figure2_model


@register("figure2")
def run(quick: bool = False) -> ExperimentResult:
    """Model-vs-simulated-experiment speedup for 1..13 workers."""
    max_workers = int(FIGURE2["max_plotted_workers"])
    grid = list(range(1, max_workers + 1))
    iterations = 2 if quick else 5

    model = spark_mnist_figure2_model()
    measured = measure_fc_iterations(grid, iterations=iterations, seed=0)

    # One batched evaluation per source: the model through its cost tree,
    # the measurements through their tabulated term.
    model_curve = model.curve(grid)
    measured_curve = measured.curve(grid)
    model_speedups = list(model_curve.speedups)
    measured_speedups = list(measured_curve.speedups)

    rows = []
    for n, model_t, measured_t, model_s, measured_s in zip(
        grid, model_curve.times, measured_curve.times, model_speedups, measured_speedups
    ):
        rows.append(
            {
                "workers": n,
                "model_time_s": model_t,
                "experiment_time_s": measured_t,
                "model_speedup": model_s,
                "experiment_speedup": measured_s,
            }
        )

    speedup_mape = mape(measured_speedups, model_speedups)
    model_optimal = model.optimal_workers(max_workers)
    experiment_optimal = grid[measured_speedups.index(max(measured_speedups))]
    return ExperimentResult(
        experiment="figure2",
        description="Speedup of one iteration for fully connected ANN training (Spark)",
        rows=rows,
        metrics={
            "mape_pct": speedup_mape,
            "paper_mape_pct": float(FIGURE2["mape_pct"]),
            "mape_acceptance_pct": MAPE_ACCEPTANCE["figure2"],
            "model_optimal_workers": float(model_optimal),
            "paper_optimal_workers": float(FIGURE2["optimal_workers"]),
            "experiment_optimal_workers": float(experiment_optimal),
            "model_peak_speedup": max(model_speedups),
            "experiment_peak_speedup": max(measured_speedups),
        },
        notes=[
            "The paper reports MAPE 13.7% against its physical Spark cluster"
            " and an optimal worker count of nine; the simulated cluster"
            " reproduces the nine-worker model optimum and a plateau beyond"
            " it ('adding more workers does not provide any speedup').",
            "The experimental curve flattens rather than dips after nine"
            " workers: the simulator's two-wave aggregation overlaps wave-1"
            " groups slightly better than the closed-form 2*ceil(sqrt(n))"
            " bound, the same direction of deviation the paper observed.",
        ],
    )
