"""Figure 2 reproduction: speedup of one iteration, FC ANN on Spark.

Both curves flow through the pluggable-backend seam, from one scenario
spec (``builtin/figure2.json``): the *model* curve evaluates the
compiled :class:`~repro.models.gradient_descent.SparkGradientDescentModel`
through the :class:`~repro.core.backend.AnalyticBackend`, and the
*experiment* curve re-targets the very same spec at the
:class:`~repro.simulate.backend.SimulatedBackend`, which runs the
spec-declared Spark-like configuration (JVM-ish scheduling overhead,
straggler jitter, torrent broadcast, two-wave aggregation) on the
discrete-event cluster.  The comparison metric is the paper's: MAPE
between model and experimental *speedups*.
"""

from __future__ import annotations

from repro.core.metrics import mape
from repro.experiments.reference import FIGURE2, MAPE_ACCEPTANCE
from repro.experiments.runner import ExperimentResult, register
from repro.scenarios.compile import compile_point
from repro.scenarios.spec import load_builtin, with_backend


@register("figure2")
def run(quick: bool = False) -> ExperimentResult:
    """Model-vs-simulated-experiment speedup for 1..13 workers."""
    spec = load_builtin("figure2")
    grid = list(spec.workers)
    max_workers = int(FIGURE2["max_plotted_workers"])

    model_target, analytic = compile_point(spec)
    simulated_spec = with_backend(spec, "simulated", iterations=2 if quick else 5)
    simulated_target, simulated = compile_point(simulated_spec)

    # One curve per backend: the model through its cost tree, the
    # experiment through the discrete-event engine — same target family,
    # same grid, same baseline.
    model_curve = analytic.curve(model_target, grid, spec.baseline_workers)
    measured_curve = simulated.curve(simulated_target, grid, spec.baseline_workers)
    model_speedups = list(model_curve.speedups)
    measured_speedups = list(measured_curve.speedups)

    rows = []
    for n, model_t, measured_t, model_s, measured_s in zip(
        grid, model_curve.times, measured_curve.times, model_speedups, measured_speedups
    ):
        rows.append(
            {
                "workers": n,
                "model_time_s": model_t,
                "experiment_time_s": measured_t,
                "model_speedup": model_s,
                "experiment_speedup": measured_s,
            }
        )

    speedup_mape = mape(measured_speedups, model_speedups)
    model_optimal = model_target.model.optimal_workers(max_workers)
    experiment_optimal = grid[measured_speedups.index(max(measured_speedups))]
    return ExperimentResult(
        experiment="figure2",
        description="Speedup of one iteration for fully connected ANN training (Spark)",
        rows=rows,
        metrics={
            "mape_pct": speedup_mape,
            "paper_mape_pct": float(FIGURE2["mape_pct"]),
            "mape_acceptance_pct": MAPE_ACCEPTANCE["figure2"],
            "model_optimal_workers": float(model_optimal),
            "paper_optimal_workers": float(FIGURE2["optimal_workers"]),
            "experiment_optimal_workers": float(experiment_optimal),
            "model_peak_speedup": max(model_speedups),
            "experiment_peak_speedup": max(measured_speedups),
        },
        notes=[
            "The paper reports MAPE 13.7% against its physical Spark cluster"
            " and an optimal worker count of nine; the simulated cluster"
            " reproduces the nine-worker model optimum and a plateau beyond"
            " it ('adding more workers does not provide any speedup').",
            "The experimental curve flattens rather than dips after nine"
            " workers: the simulator's two-wave aggregation overlaps wave-1"
            " groups slightly better than the closed-form 2*ceil(sqrt(n))"
            " bound, the same direction of deviation the paper observed.",
            "Both curves run through the same scenario spec and the"
            " pluggable-backend seam: `repro-experiments scenario run"
            " figure2 --backend simulated` reproduces the experimental"
            " column.",
        ],
    )
