"""Planner-driven reproduction of the paper's optimal-scale-out numbers.

The paper's headline observations are provisioning decisions: Figure 2's
Spark backpropagation on the Table I MNIST network peaks at N = 9
workers, and the deep-learning analysis (Table I's Inception v3) scales
only as far as the gradient payload allows.  This experiment derives
those observations through the capacity planner — each network becomes a
:class:`~repro.planner.spec.PlanSpec` with an unconstrained ``min-time``
objective, and the report's grid argmax, golden-section refined optimum
and knee must all tell the same story the analytic curves do.
"""

from __future__ import annotations

from repro.experiments.reference import FIGURE2
from repro.experiments.runner import ExperimentResult, register
from repro.planner import resolve_plan, run_plan
from repro.scenarios.sweep import SweepRunner

#: The Inception v3 deployment of the planner study: Chen et al.'s K40
#: workers on the paper's 1 GbE fabric, mini-batch 128.
_INCEPTION_SCENARIO = {
    "scenario": 1,
    "name": "inception-gd",
    "description": "Inception v3, synchronous data-parallel GD, batch 128",
    "hardware": {"node": "nvidia-k40", "link": "1gbe"},
    "algorithm": {
        "kind": "gradient_descent",
        "params": {"architecture": "inception-v3", "batch_size": 128},
    },
    "workers": {"min": 1, "max": 32},
    "baseline_workers": 1,
}


def _plan_for(name: str, scenario: object, max_workers: int | None) -> dict:
    document: dict = {
        "plan": 1,
        "name": name,
        "description": f"optimal scale-out study ({name})",
        "scenario": scenario,
        "objective": "min-time",
        "refine": True,
        "knee_fraction": 0.95,
    }
    if max_workers is not None:
        document["search"] = {"workers": {"min": 1, "max": max_workers}}
    return document


@register("planner-scale-out")
def run(quick: bool = False) -> ExperimentResult:
    """Optimal scale-out for the Table I networks, via the planner."""
    studies = [
        ("Fully connected (MNIST)", _plan_for("scale-out-mnist", "figure2", None)),
        (
            "Inception v.3 (ImageNet)",
            _plan_for(
                "scale-out-inception",
                _INCEPTION_SCENARIO,
                16 if quick else None,
            ),
        ),
    ]
    runner = SweepRunner(mode="serial", use_cache=False)
    rows = []
    refined_deltas = []
    mnist_optimal = None
    for network, document in studies:
        recommendation = run_plan(resolve_plan(document), runner=runner)
        chosen = recommendation.chosen
        assert chosen is not None  # unconstrained plans always have a choice
        refined = recommendation.refined_workers
        delta = abs(round(refined) - recommendation.analytic_optimal_workers)
        refined_deltas.append(delta)
        if network.startswith("Fully connected"):
            mnist_optimal = chosen.workers
        rows.append(
            {
                "network": network,
                "optimal_workers": chosen.workers,
                "refined_optimum": refined,
                "knee_workers": recommendation.knee_workers,
                "peak_speedup": chosen.speedup,
                "cost_usd_per_run": chosen.cost_usd,
            }
        )
    return ExperimentResult(
        experiment="planner-scale-out",
        description="Optimal scale-out of the Table I networks, derived by the capacity planner",
        rows=rows,
        metrics={
            "mnist_fc_optimal_workers": float(mnist_optimal),
            "paper_optimal_workers": float(FIGURE2["optimal_workers"]),
            "max_refined_vs_argmax_delta": float(max(refined_deltas)),
        },
        notes=[
            "The MNIST row reproduces Figure 2's provisioning decision"
            " (the paper reports N = 9 on 13 available workers) through"
            " the planner's min-time objective; the refined optimum is"
            " the golden-section continuous argmax of the same model.",
            "The Inception row plans Chen et al.'s K40/1GbE deployment:"
            " the 190 MB gradient payload caps profitable scale-out far"
            " below the hardware's availability, exactly the paper's"
            " deep-learning observation.",
        ],
    )
