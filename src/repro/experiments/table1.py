"""Table I reproduction: network parameter and computation counts."""

from __future__ import annotations

from repro.core.metrics import relative_error
from repro.experiments.reference import TABLE1
from repro.experiments.runner import ExperimentResult, register
from repro.nn.architectures import inception_v3, mnist_fc


@register("table1")
def run(quick: bool = False) -> ExperimentResult:
    """Recompute Table I from the architecture specs and layer formulas.

    The fully-connected entry counts operations in the paper's dense
    units (``2 n_i m_i`` per layer); the Inception entry in multiply-adds
    (the paper's convolutional unit).  See :mod:`repro.nn.flops` for the
    unit discussion.
    """
    computed = {
        "Fully connected (MNIST)": (
            float(mnist_fc().total_weights),
            float(mnist_fc().forward_operations),
        ),
        "Inception v.3 (ImageNet)": (
            float(inception_v3().total_weights),
            float(inception_v3().forward_madds),
        ),
    }
    rows = []
    worst_error = 0.0
    for reference in TABLE1:
        parameters, computations = computed[reference.network]
        parameter_error = relative_error(reference.parameters, parameters) * 100
        computation_error = relative_error(reference.computations, computations) * 100
        worst_error = max(worst_error, abs(parameter_error), abs(computation_error))
        rows.append(
            {
                "network": reference.network,
                "paper_parameters": reference.parameters,
                "computed_parameters": parameters,
                "param_err_pct": parameter_error,
                "paper_computations": reference.computations,
                "computed_computations": computations,
                "comp_err_pct": computation_error,
            }
        )
    return ExperimentResult(
        experiment="table1",
        description="Network configurations (parameters / forward computations)",
        rows=rows,
        metrics={"worst_abs_error_pct": worst_error},
        notes=[
            "The paper rounds published figures (Inception v3's actual counts"
            " are 23.8e6 parameters and 5.72e9 multiply-adds; the paper quotes"
            " 25e6 and 5e9).  Our layer-by-layer counts land on the published"
            " values, within the paper's own rounding of ~15%.",
        ],
    )
