"""Text rendering: tables and ASCII charts (the environment has no display)."""

from __future__ import annotations

from collections.abc import Mapping, Sequence

from repro.core.errors import ExperimentError


def render_table(rows: Sequence[Mapping[str, object]], float_format: str = "{:.4g}") -> str:
    """Render dict rows as an aligned text table (keys of the first row)."""
    if not rows:
        raise ExperimentError("cannot render an empty table")
    columns = list(rows[0].keys())

    def fmt(value: object) -> str:
        if isinstance(value, bool):
            return str(value)
        if isinstance(value, float):
            return float_format.format(value)
        return str(value)

    rendered = [[fmt(row.get(column, "")) for column in columns] for row in rows]
    widths = [
        max(len(column), *(len(line[i]) for line in rendered))
        for i, column in enumerate(columns)
    ]
    header = "  ".join(column.ljust(widths[i]) for i, column in enumerate(columns))
    separator = "  ".join("-" * width for width in widths)
    body = [
        "  ".join(line[i].rjust(widths[i]) for i in range(len(columns))) for line in rendered
    ]
    return "\n".join([header, separator, *body])


def render_chart(
    series: Mapping[str, Sequence[tuple[float, float]]],
    width: int = 64,
    height: int = 18,
    x_label: str = "workers",
    y_label: str = "speedup",
) -> str:
    """A plain-text scatter/line chart for one or more (x, y) series.

    Each series gets a marker character; points are plotted on a
    character grid with linear axes — enough to eyeball the speedup
    curves the paper plots.
    """
    if not series:
        raise ExperimentError("cannot chart zero series")
    markers = "*o+x#@%&"
    all_points = [point for points in series.values() for point in points]
    if not all_points:
        raise ExperimentError("cannot chart empty series")
    xs = [point[0] for point in all_points]
    ys = [point[1] for point in all_points]
    x_low, x_high = min(xs), max(xs)
    y_low, y_high = min(0.0, min(ys)), max(ys)
    if x_high == x_low:
        x_high = x_low + 1.0
    if y_high == y_low:
        y_high = y_low + 1.0

    grid = [[" "] * width for _ in range(height)]
    for index, (name, points) in enumerate(series.items()):
        marker = markers[index % len(markers)]
        for x, y in points:
            column = int((x - x_low) / (x_high - x_low) * (width - 1))
            row = int((y - y_low) / (y_high - y_low) * (height - 1))
            grid[height - 1 - row][column] = marker

    lines = []
    for i, row_chars in enumerate(grid):
        if i == 0:
            prefix = f"{y_high:8.2f} |"
        elif i == height - 1:
            prefix = f"{y_low:8.2f} |"
        else:
            prefix = " " * 8 + " |"
        lines.append(prefix + "".join(row_chars))
    lines.append(" " * 10 + "-" * width)
    lines.append(
        " " * 10 + f"{x_low:<10.4g}{x_label:^{max(0, width - 20)}}{x_high:>10.4g}"
    )
    legend = "   ".join(
        f"{markers[i % len(markers)]} {name}" for i, name in enumerate(series)
    )
    lines.append(" " * 10 + legend + f"   (y: {y_label})")
    return "\n".join(lines)
