"""Values the paper reports, used as acceptance targets.

Everything here is quoted from Ulanov et al. (ICDE 2017); nothing is
fitted.  The reproduction does not expect to match the experimental
MAPEs digit-for-digit (our testbed is a simulator, theirs was physical
hardware) — the acceptance criterion is that each reproduced MAPE falls
in the same band and every qualitative claim (optimal worker counts,
curve shapes, who-wins orderings) holds.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Table1Row:
    """One row of the paper's Table I."""

    network: str
    parameters: float
    computations: float


#: Table I: network configurations.
TABLE1 = (
    Table1Row(network="Fully connected (MNIST)", parameters=12e6, computations=24e6),
    Table1Row(network="Inception v.3 (ImageNet)", parameters=25e6, computations=5e9),
)

#: Figure 1 (illustrative example): "speedup ... starts to decrease at
#: around 14 nodes".
FIGURE1_PEAK_WORKERS = 14

#: Figure 2 (Spark FC ANN): model constants and reported outcomes.
FIGURE2 = {
    "parameters": 12e6,
    "bits_per_parameter": 64,
    "batch_size": 60000,
    "flops": 0.8 * 105.6e9,
    "bandwidth_bps": 1e9,
    "optimal_workers": 9,
    "mape_pct": 13.7,
    "max_plotted_workers": 13,
}

#: Figure 3 (Inception v3 weak scaling, data from Chen et al.).
FIGURE3 = {
    "parameters": 25e6,
    "bits_per_parameter": 32,
    "operations_per_sample": 3 * 5e9,
    "batch_size_per_worker": 128,
    "flops": 0.5 * 4.28e12,
    "bandwidth_bps": 1e9,
    "baseline_workers": 50,
    "mape_pct": 1.2,
}

#: Figure 4 (BP on the enterprise DNS graph, 80-core DL980).
FIGURE4 = {
    "vertex_count": 16_259_408,
    "edge_count": 99_854_596,
    "max_degree": 309_368,
    "cores": 80,
    "states": 2,
    "mape_pct": 25.4,
}

#: Section V-B: MAPE for the smaller graphs.
FIGURE4_SMALL_GRAPH_MAPE = {
    "1.6m": 26.0,
    "165k": 19.6,
    "16k": 23.5,
}

#: Acceptance bands for the reproduced MAPEs (percentage points).  Wide
#: on purpose: the simulator's noise processes are calibrated, not
#: fitted, and the claim being tested is "same band", not "same digit".
MAPE_ACCEPTANCE = {
    "figure2": 25.0,
    "figure3": 6.0,
    "figure4": 45.0,
}
