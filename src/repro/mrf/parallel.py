"""Partitioned BP: vertex-parallel message passing with work accounting.

The paper parallelises BP by assigning vertices to workers; each
synchronous iteration is a BSP superstep in which worker ``i`` updates
the outgoing messages of its own vertices, reading replicated state for
remote neighbours.  This module runs *real* BP partitioned that way and
records, per superstep, exactly the quantities the paper's model reasons
about: per-worker edge work and the replicated-vertex count.

The partitioned execution is semantically identical to sequential
synchronous BP (a property the tests pin down): partitioning changes
*where* messages are computed, never their values.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.errors import InferenceError, PartitionError
from repro.graph.partition import VertexPartition, degree_loads, replication_factor
from repro.mrf.bp import BPResult, LoopyBP
from repro.mrf.model import PairwiseMRF


@dataclass(frozen=True)
class WorkProfile:
    """Per-superstep work layout of a partitioned BP run."""

    workers: int
    arc_updates_per_worker: np.ndarray  # directed message updates per superstep
    max_arc_updates: int
    total_arc_updates: int
    replication: float

    @property
    def balance(self) -> float:
        """``mean / max`` of per-worker work: 1.0 is perfect balance."""
        mean = self.total_arc_updates / self.workers
        if self.max_arc_updates == 0:
            raise InferenceError("work profile has no arc updates")
        return mean / self.max_arc_updates


@dataclass
class PartitionedBPResult:
    """BP output plus the parallel execution profile."""

    result: BPResult
    profile: WorkProfile


class PartitionedBP:
    """Vertex-parallel synchronous BP over an explicit partition."""

    def __init__(self, mrf: PairwiseMRF, partition: VertexPartition, damping: float = 0.0):
        if partition.vertex_count != mrf.vertex_count:
            raise PartitionError(
                f"partition covers {partition.vertex_count} vertices, MRF has {mrf.vertex_count}"
            )
        self.mrf = mrf
        self.partition = partition
        self._bp = LoopyBP(mrf, damping=damping)

    def work_profile(self) -> WorkProfile:
        """Per-worker message-update counts for one superstep.

        A worker updates one outgoing message per incident arc of each of
        its vertices, so its arc work is the sum of its vertices' degrees
        (``Ernd_i`` in the paper, before duplicate correction: intra-worker
        edges genuinely cost both endpoints' workers an update each).
        """
        loads = degree_loads(self.partition, self.mrf.graph.degrees)
        replication = (
            replication_factor(self.mrf.graph, self.partition)
            if self.partition.workers > 1
            else 0.0
        )
        return WorkProfile(
            workers=self.partition.workers,
            arc_updates_per_worker=loads.astype(np.int64),
            max_arc_updates=int(loads.max()),
            total_arc_updates=int(loads.sum()),
            replication=replication,
        )

    def run(self, max_iterations: int = 100, tolerance: float = 1e-6) -> PartitionedBPResult:
        """Run synchronous BP; partitioning does not change the math.

        Synchronous BP computes every round-``t+1`` message from
        round-``t`` messages only, so the assignment of vertices to
        workers affects scheduling, not values — we therefore delegate
        the numerics to :class:`~repro.mrf.bp.LoopyBP` and attach the
        partition's work profile.
        """
        result = self._bp.run(max_iterations=max_iterations, tolerance=tolerance)
        return PartitionedBPResult(result=result, profile=self.work_profile())
