"""Pairwise Markov random fields (Section IV-B of the paper).

"In our analysis, we consider pairwise Markov random field (MRF) model,
which is generic enough to represent any graphical model."  A pairwise
MRF over graph ``G`` with ``S`` states per variable factorises as

    P(x) ∝ prod_v phi_v(x_v) * prod_{(u,v)} psi_uv(x_u, x_v)

with strictly positive potentials.  Edge potentials are stored for the
canonical orientation ``u < v``; the transposed matrix serves the other
direction.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.errors import InferenceError
from repro.graph.graph import Graph


@dataclass(frozen=True)
class PairwiseMRF:
    """A pairwise MRF: a graph, unary potentials, per-edge pair potentials.

    ``unary`` has shape ``(V, S)``; ``pairwise`` has shape ``(E, S, S)``
    indexed in the order of :meth:`~repro.graph.graph.Graph.edges` (with
    ``u < v``; entry ``[e, a, b]`` scores ``x_u = a, x_v = b``).
    """

    graph: Graph
    unary: np.ndarray
    pairwise: np.ndarray

    def __post_init__(self) -> None:
        unary = np.asarray(self.unary, dtype=np.float64)
        pairwise = np.asarray(self.pairwise, dtype=np.float64)
        if unary.ndim != 2 or unary.shape[0] != self.graph.vertex_count:
            raise InferenceError(
                f"unary must be (V, S) = ({self.graph.vertex_count}, S), got {unary.shape}"
            )
        states = unary.shape[1]
        if states < 2:
            raise InferenceError(f"need at least 2 states, got {states}")
        if pairwise.shape != (self.graph.edge_count, states, states):
            raise InferenceError(
                f"pairwise must be (E, S, S) = ({self.graph.edge_count}, {states}, {states}),"
                f" got {pairwise.shape}"
            )
        if np.any(unary <= 0) or np.any(pairwise <= 0):
            raise InferenceError("potentials must be strictly positive")

    @property
    def states(self) -> int:
        """Number of states ``S`` per variable."""
        return int(self.unary.shape[1])

    @property
    def vertex_count(self) -> int:
        """Number of variables ``V``."""
        return self.graph.vertex_count

    @property
    def edge_count(self) -> int:
        """Number of pairwise factors ``E``."""
        return self.graph.edge_count

    def edge_index(self) -> dict[tuple[int, int], int]:
        """Map from canonical ``(u, v)`` (``u < v``) to edge id."""
        edges = self.graph.edges()
        return {(int(u), int(v)): i for i, (u, v) in enumerate(edges)}

    def joint_unnormalised(self, assignment: np.ndarray) -> float:
        """Unnormalised probability of one full assignment (for tests)."""
        assignment = np.asarray(assignment)
        if assignment.shape != (self.vertex_count,):
            raise InferenceError(
                f"assignment must have shape ({self.vertex_count},), got {assignment.shape}"
            )
        if assignment.min() < 0 or assignment.max() >= self.states:
            raise InferenceError("assignment states out of range")
        value = float(np.prod(self.unary[np.arange(self.vertex_count), assignment]))
        for edge_id, (u, v) in enumerate(self.graph.edges()):
            value *= float(self.pairwise[edge_id, assignment[u], assignment[v]])
        return value


def ising_mrf(
    graph: Graph,
    coupling: float = 0.5,
    field: float = 0.0,
    states: int = 2,
    seed: int | None = None,
) -> PairwiseMRF:
    """A homogeneous (anti-)ferromagnetic MRF.

    ``coupling > 0`` favours agreeing neighbours (attractive);
    ``coupling < 0`` favours disagreement (repulsive).  ``field`` biases
    every variable toward state 0.  With ``seed`` given, unary potentials
    get per-vertex random fields instead of a uniform one — the usual
    benchmark for loopy BP convergence studies.
    """
    if states < 2:
        raise InferenceError(f"need at least 2 states, got {states}")
    agreement = np.eye(states)
    pairwise_single = np.exp(coupling * (2.0 * agreement - 1.0))
    pairwise = np.tile(pairwise_single, (graph.edge_count, 1, 1))
    if seed is None:
        unary_single = np.exp(field * (np.arange(states) == 0).astype(float))
        unary = np.tile(unary_single, (graph.vertex_count, 1))
    else:
        rng = np.random.default_rng(seed)
        unary = np.exp(rng.normal(0.0, abs(field) if field else 0.5, size=(graph.vertex_count, states)))
    return PairwiseMRF(graph=graph, unary=unary, pairwise=pairwise)


def random_mrf(graph: Graph, states: int = 2, seed: int = 0, scale: float = 1.0) -> PairwiseMRF:
    """Fully random positive potentials (spin-glass-like)."""
    if states < 2:
        raise InferenceError(f"need at least 2 states, got {states}")
    if scale <= 0:
        raise InferenceError(f"scale must be positive, got {scale}")
    rng = np.random.default_rng(seed)
    unary = np.exp(rng.normal(0.0, scale, size=(graph.vertex_count, states)))
    pairwise = np.exp(rng.normal(0.0, scale, size=(graph.edge_count, states, states)))
    return PairwiseMRF(graph=graph, unary=unary, pairwise=pairwise)
