"""Image denoising with a grid MRF — a classic loopy-BP application.

The paper cites image denoising among loopy BP's practical uses; this
module provides the standard binary-image formulation used by the
examples and tests: a 2-D Ising grid whose unary potentials encode the
observed noisy pixels and whose pairwise potentials encode smoothness.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.errors import InferenceError
from repro.graph.generators import grid_2d
from repro.mrf.bp import BPResult, LoopyBP
from repro.mrf.model import PairwiseMRF


@dataclass(frozen=True)
class DenoisingProblem:
    """A noisy binary image plus the MRF encoding it."""

    clean: np.ndarray
    noisy: np.ndarray
    mrf: PairwiseMRF

    @property
    def shape(self) -> tuple[int, int]:
        """Image dimensions."""
        return self.clean.shape  # type: ignore[return-value]


def binary_image(rows: int, cols: int, seed: int = 0) -> np.ndarray:
    """A blocky random binary image (smooth regions, so smoothing helps)."""
    if rows < 2 or cols < 2:
        raise InferenceError(f"image must be at least 2x2, got {rows}x{cols}")
    rng = np.random.default_rng(seed)
    # Low-frequency random field thresholded at zero.
    field = np.zeros((rows, cols))
    for _ in range(3):
        cr, cc = rng.integers(0, rows), rng.integers(0, cols)
        rr, cc_grid = np.mgrid[0:rows, 0:cols]
        field += rng.normal() * np.exp(
            -(((rr - cr) / (rows / 2)) ** 2 + ((cc_grid - cc) / (cols / 2)) ** 2)
        )
    return (field > np.median(field)).astype(np.int64)


def add_noise(image: np.ndarray, flip_probability: float, seed: int = 0) -> np.ndarray:
    """Flip each pixel independently with the given probability."""
    if not 0.0 <= flip_probability < 0.5:
        raise InferenceError(
            f"flip_probability must be in [0, 0.5), got {flip_probability}"
        )
    rng = np.random.default_rng(seed)
    flips = rng.random(image.shape) < flip_probability
    return np.where(flips, 1 - image, image)


def denoising_mrf(
    noisy: np.ndarray, flip_probability: float = 0.1, smoothness: float = 0.7
) -> PairwiseMRF:
    """The standard formulation: unary = observation model, pairwise = Ising.

    ``phi_v(x) = P(observed | x)`` under the flip model; ``psi`` rewards
    agreeing neighbours with strength ``smoothness``.
    """
    if noisy.ndim != 2:
        raise InferenceError(f"noisy image must be 2-D, got shape {noisy.shape}")
    if not 0.0 < flip_probability < 0.5:
        raise InferenceError(f"flip_probability must be in (0, 0.5), got {flip_probability}")
    if smoothness <= 0:
        raise InferenceError(f"smoothness must be positive, got {smoothness}")
    rows, cols = noisy.shape
    graph = grid_2d(rows, cols)
    observed = noisy.ravel()
    unary = np.where(
        observed[:, None] == np.arange(2)[None, :], 1.0 - flip_probability, flip_probability
    )
    agreement = np.eye(2)
    pairwise_single = np.exp(smoothness * (2.0 * agreement - 1.0))
    pairwise = np.tile(pairwise_single, (graph.edge_count, 1, 1))
    return PairwiseMRF(graph=graph, unary=unary, pairwise=pairwise)


def make_problem(
    rows: int = 24,
    cols: int = 24,
    flip_probability: float = 0.1,
    smoothness: float = 0.7,
    seed: int = 0,
) -> DenoisingProblem:
    """Generate a clean image, corrupt it, and build the denoising MRF."""
    clean = binary_image(rows, cols, seed=seed)
    noisy = add_noise(clean, flip_probability, seed=seed + 1)
    mrf = denoising_mrf(noisy, flip_probability=flip_probability, smoothness=smoothness)
    return DenoisingProblem(clean=clean, noisy=noisy, mrf=mrf)


def denoise(problem: DenoisingProblem, max_iterations: int = 50) -> tuple[np.ndarray, BPResult]:
    """Run loopy BP and threshold the marginals into a restored image."""
    result = LoopyBP(problem.mrf, damping=0.2).run(max_iterations=max_iterations)
    restored = result.map_states().reshape(problem.shape)
    return restored, result


def pixel_error(a: np.ndarray, b: np.ndarray) -> float:
    """Fraction of differing pixels."""
    if a.shape != b.shape:
        raise InferenceError(f"image shapes differ: {a.shape} vs {b.shape}")
    return float(np.mean(a != b))
