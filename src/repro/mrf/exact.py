"""Exact inference by enumeration — the oracle for BP correctness tests."""

from __future__ import annotations

import itertools

import numpy as np

from repro.core.errors import InferenceError
from repro.mrf.model import PairwiseMRF

#: Enumeration is S^V; keep the state space bounded.
MAX_ASSIGNMENTS = 2_000_000


def exact_marginals(mrf: PairwiseMRF) -> np.ndarray:
    """Per-vertex marginals by brute-force enumeration of all assignments.

    Only feasible for tiny models (``S^V`` bounded); BP on trees must
    match this exactly, and loopy BP approximately.
    """
    vertex_count = mrf.vertex_count
    states = mrf.states
    total_assignments = states**vertex_count
    if total_assignments > MAX_ASSIGNMENTS:
        raise InferenceError(
            f"{states}^{vertex_count} assignments exceed the enumeration budget"
        )
    marginals = np.zeros((vertex_count, states))
    partition = 0.0
    edges = mrf.graph.edges()
    log_unary = np.log(mrf.unary)
    log_pairwise = np.log(mrf.pairwise)
    for assignment in itertools.product(range(states), repeat=vertex_count):
        state = np.asarray(assignment)
        log_value = float(log_unary[np.arange(vertex_count), state].sum())
        for edge_id, (u, v) in enumerate(edges):
            log_value += float(log_pairwise[edge_id, state[u], state[v]])
        value = float(np.exp(log_value))
        partition += value
        marginals[np.arange(vertex_count), state] += value
    if partition == 0.0:
        raise InferenceError("partition function vanished; potentials underflowed")
    return marginals / partition


def exact_map(mrf: PairwiseMRF) -> np.ndarray:
    """Most probable assignment by enumeration (for denoising tests)."""
    vertex_count = mrf.vertex_count
    states = mrf.states
    if states**vertex_count > MAX_ASSIGNMENTS:
        raise InferenceError(
            f"{states}^{vertex_count} assignments exceed the enumeration budget"
        )
    best_value = -np.inf
    best: np.ndarray | None = None
    edges = mrf.graph.edges()
    log_unary = np.log(mrf.unary)
    log_pairwise = np.log(mrf.pairwise)
    for assignment in itertools.product(range(states), repeat=vertex_count):
        state = np.asarray(assignment)
        log_value = float(log_unary[np.arange(vertex_count), state].sum())
        for edge_id, (u, v) in enumerate(edges):
            log_value += float(log_pairwise[edge_id, state[u], state[v]])
        if log_value > best_value:
            best_value = log_value
            best = state.copy()
    assert best is not None
    return best
