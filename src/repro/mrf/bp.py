"""Loopy belief propagation (Section V-B of the paper).

The two steps the paper describes: "(i) based on the messages from its
neighbors, a vertex updates its own belief; and (ii) based on its updated
belief, a vertex sends out messages to its neighbors", repeated until
convergence.  Updates are synchronous (all messages recomputed from the
previous iteration's messages), which is exactly the BSP superstep
structure the scalability model assumes.

Messages live on *directed arcs*.  Arc ``p`` is position ``p`` of the
graph's CSR ``indices`` array: the arc from ``src[p]`` to ``dst[p]``.
Computation is done in log space for numerical robustness; messages are
normalised to sum to one.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.errors import InferenceError
from repro.mrf.model import PairwiseMRF


def _logsumexp(values: np.ndarray, axis: int) -> np.ndarray:
    peak = values.max(axis=axis, keepdims=True)
    return (peak + np.log(np.sum(np.exp(values - peak), axis=axis, keepdims=True))).squeeze(axis)


@dataclass(frozen=True)
class ArcStructure:
    """Precomputed arc arrays for vectorised message passing."""

    source: np.ndarray  # (A,) arc source vertex
    destination: np.ndarray  # (A,) arc destination vertex
    reverse: np.ndarray  # (A,) position of the opposite arc
    log_pairwise: np.ndarray  # (A, S, S) oriented potential: [p, x_src, x_dst]

    @classmethod
    def build(cls, mrf: PairwiseMRF) -> "ArcStructure":
        """Derive arc arrays from the MRF's CSR graph and edge potentials."""
        graph = mrf.graph
        vertex_count = graph.vertex_count
        source = np.repeat(np.arange(vertex_count), graph.degrees)
        destination = graph.indices.copy()
        # Match arcs with their reverses by sorting canonical keys: the
        # arc (u, v) and its reverse (v, u) share the unordered key.
        forward_key = source * vertex_count + destination
        backward_key = destination * vertex_count + source
        order_forward = np.argsort(forward_key, kind="stable")
        order_backward = np.argsort(backward_key, kind="stable")
        reverse = np.empty(source.size, dtype=np.int64)
        reverse[order_backward] = order_forward
        # Oriented potentials: canonical edges are stored u < v.
        edge_lookup = {}
        for edge_id, (u, v) in enumerate(graph.edges()):
            edge_lookup[(int(u), int(v))] = edge_id
        states = mrf.states
        log_pairwise = np.empty((source.size, states, states))
        log_edge = np.log(mrf.pairwise)
        for arc in range(source.size):
            u, v = int(source[arc]), int(destination[arc])
            if u < v:
                log_pairwise[arc] = log_edge[edge_lookup[(u, v)]]
            else:
                log_pairwise[arc] = log_edge[edge_lookup[(v, u)]].T
        return cls(
            source=source, destination=destination, reverse=reverse, log_pairwise=log_pairwise
        )

    @property
    def arc_count(self) -> int:
        """Number of directed arcs (= 2E)."""
        return int(self.source.size)


@dataclass
class BPResult:
    """Outcome of a loopy-BP run."""

    beliefs: np.ndarray  # (V, S) normalised marginals
    iterations: int
    converged: bool
    final_delta: float
    message_updates: int  # total arcs updated across all iterations

    def map_states(self) -> np.ndarray:
        """Per-vertex most probable state."""
        return np.argmax(self.beliefs, axis=1)


class LoopyBP:
    """Synchronous loopy belief propagation with optional damping."""

    def __init__(self, mrf: PairwiseMRF, damping: float = 0.0):
        if not 0.0 <= damping < 1.0:
            raise InferenceError(f"damping must be in [0, 1), got {damping}")
        if mrf.edge_count == 0:
            raise InferenceError("BP needs at least one edge")
        self.mrf = mrf
        self.damping = damping
        self.arcs = ArcStructure.build(mrf)
        self._log_unary = np.log(mrf.unary)

    def _initial_messages(self) -> np.ndarray:
        states = self.mrf.states
        return np.full((self.arcs.arc_count, states), -np.log(states))

    def _update(self, log_messages: np.ndarray) -> np.ndarray:
        """One synchronous round; returns new normalised log messages."""
        states = self.mrf.states
        vertex_count = self.mrf.vertex_count
        # Total incoming log-message mass per vertex and state.
        total_in = np.zeros((vertex_count, states))
        for state in range(states):
            total_in[:, state] = np.bincount(
                self.arcs.destination, weights=log_messages[:, state], minlength=vertex_count
            )
        # For arc p = (u -> v): exclude the reverse message (v -> u).
        exclusive = total_in[self.arcs.source] - log_messages[self.arcs.reverse]
        pre = self._log_unary[self.arcs.source] + exclusive  # (A, S_src)
        # m_new[p, x_dst] = logsumexp_{x_src}( pre[p, x_src] + log_psi[p, x_src, x_dst] ).
        new = np.empty_like(log_messages)
        for state in range(states):
            new[:, state] = _logsumexp(pre + self.arcs.log_pairwise[:, :, state], axis=1)
        # Normalise each message to sum to one (in probability space).
        new -= _logsumexp(new, axis=1)[:, None]
        if self.damping > 0.0:
            damped = np.logaddexp(
                np.log(self.damping) + log_messages,
                np.log1p(-self.damping) + new,
            )
            damped -= _logsumexp(damped, axis=1)[:, None]
            return damped
        return new

    def beliefs_from(self, log_messages: np.ndarray) -> np.ndarray:
        """Normalised vertex marginals implied by a message set."""
        states = self.mrf.states
        vertex_count = self.mrf.vertex_count
        total_in = np.zeros((vertex_count, states))
        for state in range(states):
            total_in[:, state] = np.bincount(
                self.arcs.destination, weights=log_messages[:, state], minlength=vertex_count
            )
        log_beliefs = self._log_unary + total_in
        log_beliefs -= _logsumexp(log_beliefs, axis=1)[:, None]
        return np.exp(log_beliefs)

    def run(self, max_iterations: int = 100, tolerance: float = 1e-6) -> BPResult:
        """Iterate to convergence (max message change below ``tolerance``)."""
        if max_iterations < 1:
            raise InferenceError(f"max_iterations must be >= 1, got {max_iterations}")
        if tolerance <= 0:
            raise InferenceError(f"tolerance must be positive, got {tolerance}")
        log_messages = self._initial_messages()
        delta = np.inf
        iterations = 0
        for iterations in range(1, max_iterations + 1):
            updated = self._update(log_messages)
            delta = float(np.max(np.abs(np.exp(updated) - np.exp(log_messages))))
            log_messages = updated
            if delta < tolerance:
                break
        return BPResult(
            beliefs=self.beliefs_from(log_messages),
            iterations=iterations,
            converged=delta < tolerance,
            final_delta=delta,
            message_updates=iterations * self.arcs.arc_count,
        )
