"""Pairwise MRFs, loopy belief propagation, and partitioned execution."""

from repro.mrf.bp import ArcStructure, BPResult, LoopyBP
from repro.mrf.denoise import (
    DenoisingProblem,
    add_noise,
    binary_image,
    denoise,
    denoising_mrf,
    make_problem,
    pixel_error,
)
from repro.mrf.exact import exact_map, exact_marginals
from repro.mrf.model import PairwiseMRF, ising_mrf, random_mrf
from repro.mrf.parallel import PartitionedBP, PartitionedBPResult, WorkProfile

__all__ = [
    "ArcStructure",
    "BPResult",
    "LoopyBP",
    "DenoisingProblem",
    "add_noise",
    "binary_image",
    "denoise",
    "denoising_mrf",
    "make_problem",
    "pixel_error",
    "exact_map",
    "exact_marginals",
    "PairwiseMRF",
    "ising_mrf",
    "random_mrf",
    "PartitionedBP",
    "PartitionedBPResult",
    "WorkProfile",
]
