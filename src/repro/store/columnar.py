"""Columnar, memory-mapped result store with point-level keys.

The blob cache (:mod:`repro.scenarios.cache`) keyed whole sweep results
by spec content hash: change one axis value and *everything* recomputes.
This store keys **points**.  A sweep's curves land in a numpy structured
array — one row per grid point, one ``f8`` times block per row (speedups
and efficiencies are exact derivations, recomputed on read) —
memory-mapped back on read, so a million-point hit costs a file map,
not a million dict constructions.

Layout, under ``<cache_dir>/store/``::

    <family-hash>/manifest.json        one small JSON manifest per family
    <family-hash>/grid-<sig16>.npy     one immutable chunk per grid view

A *family* is everything about a spec except its sweep block — the
content hash of ``replace(spec, sweep=())``.  Point evaluation is
independent of the sweep block (``apply_overrides`` strips it before the
point's content hash is taken), so two specs that differ only in their
grids share a family and reuse each other's points byte-identically.

A *view* is one requested grid: the cartesian product of the sweep axes,
stored as a self-contained chunk in its own product order, plus the
sweep-dependent bits (the reference point, the crossover column — both
legitimately differ per grid for seeded backends).  The reference is an
*extra trailing row* of the chunk, not manifest JSON: a reference curve
is as wide as any grid row (thousands of floats on dense grids), and
inlining it would make every manifest parse and rewrite O(workers)
instead of O(views) — measured as the dominant cost of both the hit
path and the delta commit.  An incremental sweep diffs its product
against the stored views by axis-value tokens and stride arithmetic,
reuses every row it can, and schedules only the missing points (see
:meth:`ResultStore.plan`).

Durability is the blob cache's contract, continued: chunks and manifests
write to ``.tmp-*.part`` temporaries and ``os.replace`` into place, so
readers see whole files or nothing; a corrupt manifest or chunk is a
miss, never an error; :meth:`ResultStore.clear` unlinks files
individually (never the directory) so racing writers cannot crash.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import threading
import time
from collections.abc import Sequence
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import TYPE_CHECKING

import numpy as np

from repro.core.errors import ScenarioError
from repro.obs.metrics import MetricsRegistry, get_registry
from repro.obs.trace import tracer

if TYPE_CHECKING:  # pragma: no cover - typing only, keeps store import-light
    from repro.scenarios.spec import ScenarioSpec

#: The serving counters, in registry naming.  ``stats()`` keeps its
#: historical short keys (``/healthz`` shape is golden-pinned) by
#: reading back through these.
_COUNTER_NAMES = {
    "hits": "repro_store_hits_total",
    "misses": "repro_store_misses_total",
    "deltas": "repro_store_deltas_total",
    "delta_points": "repro_store_delta_points_total",
    "points_reused": "repro_store_points_reused_total",
    "points_computed": "repro_store_points_computed_total",
    "bytes_mapped": "repro_store_bytes_mapped_total",
}

# Plan latency is dominated by the manifest scan — the store's promise
# is hit cost O(manifest), so the histogram lives on the global
# registry where a regression shows up across every instance.
_PLAN_SECONDS = get_registry().histogram(
    "repro_store_plan_seconds", "Store plan (manifest scan + diff) wall time"
)
_COMMIT_SECONDS = get_registry().histogram(
    "repro_store_commit_seconds", "Store commit (assemble + write) wall time"
)

#: Bumped when the chunk dtype or manifest schema changes — older
#: manifests are then treated as absent and rebuilt, like a key bump.
STORE_VERSION = 1

#: Subdirectory of the cache dir holding the columnar families.
STORE_SUBDIR = "store"

MANIFEST_NAME = "manifest.json"

#: Temp files older than this are crashed writers, not in-flight writes;
#: clear() and gc() remove them (fresh ones always survive — the cache
#: hammer pins that a concurrent clear never breaks a live writer).
STALE_TEMP_AGE_S = 3600.0

#: Point-dict keys held as (or derived from) columns, never meta JSON.
CURVE_KEYS = ("times_s", "speedups", "efficiencies")

#: ``crossover`` column value meaning "never beats the reference".
_NO_CROSSOVER = -1

#: Chunk fields.  ``speedups`` and ``efficiencies`` are *not* stored:
#: spec parsing guarantees ``baseline_workers`` lies on the worker grid,
#: so the baseline time is a ``times_s`` entry and
#: ``s(n) = t(baseline)/t(n)``, ``e(n) = s(n)*baseline/n`` reproduce
#: :class:`repro.core.speedup.SpeedupCurve` bit-for-bit at
#: materialization (the same IEEE-double operations in the same order).
#: Storing them would triple every chunk's bytes — and the chunk write
#: is the dominant cost of a delta commit.
_CHUNK_FIELDS = ("times_s", "crossover", "meta")

# Same variable the blob cache honours (repro.scenarios.cache); duplicated
# here rather than imported so the store stays a leaf package — scenarios
# imports the store, never the reverse.
_CACHE_DIR_ENV = "REPRO_SCENARIO_CACHE"


def _default_root() -> Path:
    override = os.environ.get(_CACHE_DIR_ENV)
    if override:
        return Path(override)
    return Path.home() / ".cache" / "repro" / "scenarios"


def family_key(spec: "ScenarioSpec") -> str:
    """The family identity: the spec's content hash with the sweep gone.

    Matches the service's point identity (``replace(spec, sweep=())`` in
    ``handle_evaluate``), so everything that shares base hardware,
    algorithm, workers and backend shares stored points.
    """
    return replace(spec, sweep=()).content_hash()


def grid_geometry(
    spec: "ScenarioSpec",
) -> tuple[tuple[str, ...], tuple[tuple, ...], tuple[int, ...]]:
    """``(axes, per-axis value tuples, shape)`` of the spec's product grid."""
    axes = tuple(axis for axis, _values in spec.sweep)
    values = tuple(tuple(axis_values) for _axis, axis_values in spec.sweep)
    shape = tuple(len(axis_values) for axis_values in values)
    return axes, values, shape


def sweep_signature(axes: Sequence[str], values: Sequence[Sequence]) -> str:
    """A stable hash of one grid: axis names and *ordered* value lists."""
    payload = json.dumps(
        {"axes": list(axes), "values": [list(v) for v in values]},
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def chunk_name(signature: str) -> str:
    return f"grid-{signature[:16]}.npy"


def _axis_token(value) -> str:
    """Canonical per-value key.  JSON tokens, not the values themselves:
    ``6000`` and ``6000.0`` are equal (and hash-equal) in Python but are
    different spec values with different content hashes."""
    return json.dumps(value, separators=(",", ":"))


def _strides(shape: Sequence[int]) -> tuple[int, ...]:
    """Row-major strides of a product grid (in rows, not bytes)."""
    strides = [1] * len(shape)
    for k in range(len(shape) - 2, -1, -1):
        strides[k] = strides[k + 1] * shape[k + 1]
    return tuple(strides)


def _chunk_dtype(worker_count: int, meta_width: int) -> np.dtype:
    return np.dtype(
        [
            ("times_s", "f8", (worker_count,)),
            ("crossover", "i8"),
            ("meta", f"S{max(1, meta_width)}"),
        ]
    )


def _unlink_quiet(path: str | Path) -> None:
    try:
        os.unlink(path)
    except OSError:
        pass


def _ensure_dir(directory: Path) -> None:
    """``mkdir -p`` that tolerates a concurrent ``rmdir``.

    ``Path.mkdir(exist_ok=True)`` re-raises ``FileExistsError`` when the
    directory vanishes between its ``EEXIST`` and its ``is_dir()``
    recheck — exactly what a racing ``gc()`` (which prunes empty family
    dirs) can do.  Callers retry on the next loop iteration anyway; a
    still-missing directory surfaces as ``FileNotFoundError`` from the
    subsequent ``mkstemp``.
    """
    try:
        directory.mkdir(parents=True, exist_ok=True)
    except FileExistsError:
        pass


def _remove_stale_temps(
    directory: Path, max_age_s: float, now: float | None = None
) -> int:
    """Unlink ``.tmp-*.part`` files older than ``max_age_s``; fresh ones
    (a live writer's in-flight data) always survive."""
    now = time.time() if now is None else now
    removed = 0
    for temp in directory.glob(".tmp-*.part"):
        try:
            if now - temp.stat().st_mtime <= max_age_s:
                continue
            temp.unlink()
            removed += 1
        except OSError:
            continue  # racing writer finished (renamed) or another cleaner won
    return removed


def _point_meta(point: dict) -> bytes:
    """The meta JSON for one row: every non-column, non-derived key."""
    payload = {
        key: value
        for key, value in point.items()
        if key != "workers"
        and key != "crossover_workers"
        and key not in CURVE_KEYS
    }
    return json.dumps(payload, separators=(",", ":")).encode("utf-8")


def materialize_point(
    chunk: np.ndarray, index: int, workers: Sequence[int], has_crossover: bool
) -> dict:
    """Rebuild one grid point's dict from its columnar row.

    Key order must match :func:`repro.scenarios.sweep.evaluate_point`
    exactly — exports and wire payloads serialise in insertion order and
    are pinned byte-identical to the non-store path.  The meta JSON holds
    every non-column key in original order; the curve arrays re-enter
    right after ``backend_config``, the crossover (a per-view value —
    it compares against the view's own reference) re-enters last.
    Speedups and efficiencies are recomputed from the times row with
    :class:`~repro.core.speedup.SpeedupCurve`'s exact expressions — the
    stored ``f8`` values round-trip the original doubles bit-for-bit, so
    the derived lists equal the fresh path's to the last bit.
    """
    row = chunk[index]
    meta = json.loads(bytes(row["meta"]).decode("utf-8"))
    point: dict = {}
    for key, value in meta.items():
        point[key] = value
        if key == "backend_config":
            times = np.atleast_1d(row["times_s"]).tolist()
            baseline = meta["baseline_workers"]
            baseline_time = times[list(workers).index(baseline)]
            speedups = [baseline_time / t for t in times]
            point["workers"] = list(workers)
            point["times_s"] = times
            point["speedups"] = speedups
            point["efficiencies"] = [
                s * baseline / n for s, n in zip(speedups, workers)
            ]
    if has_crossover:
        crossover = int(row["crossover"])
        point["crossover_workers"] = None if crossover < 0 else crossover
    return point


class LazyPoints(Sequence):
    """Sweep points materialised on demand from a columnar chunk.

    Quacks like the tuple of dicts :class:`SweepResult.points` used to
    be — indexing, iteration, equality against tuples/lists — but holds
    only the (possibly memory-mapped) structured array.  Serving a hit
    therefore costs a file map; dict construction happens per point,
    only when a consumer actually reads one.
    """

    __slots__ = ("_chunk", "_workers", "_has_crossover")

    def __init__(
        self, chunk: np.ndarray, workers: Sequence[int], has_crossover: bool
    ) -> None:
        self._chunk = chunk
        self._workers = list(workers)
        self._has_crossover = has_crossover

    def __len__(self) -> int:
        return int(self._chunk.shape[0])

    def __getitem__(self, index):
        if isinstance(index, slice):
            return [self[i] for i in range(*index.indices(len(self)))]
        index = int(index)
        if index < 0:
            index += len(self)
        if not 0 <= index < len(self):
            raise IndexError(f"point index {index} out of range")
        return materialize_point(
            self._chunk, index, self._workers, self._has_crossover
        )

    def __iter__(self):
        for index in range(len(self)):
            yield self[index]

    def __eq__(self, other):
        if isinstance(other, (LazyPoints, list, tuple)):
            if len(other) != len(self):
                return False
            return all(mine == theirs for mine, theirs in zip(self, other))
        return NotImplemented

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"LazyPoints({len(self)} points x {len(self._workers)} workers)"


@dataclass
class _View:
    """One manifest view entry, parsed and shape-checked.

    ``reference`` flags whether the chunk carries a trailing reference
    row (row index ``rows``) — ``rows`` itself always counts grid rows.
    """

    signature: str
    chunk: str
    axes: tuple[str, ...]
    values: tuple[tuple, ...]
    rows: int
    reference: bool

    @classmethod
    def from_manifest(cls, entry) -> "_View | None":
        if not isinstance(entry, dict):
            return None
        signature = entry.get("signature")
        chunk = entry.get("chunk")
        axes = entry.get("axes")
        values = entry.get("values")
        rows = entry.get("rows")
        reference = entry.get("reference")
        if not (isinstance(signature, str) and isinstance(chunk, str)):
            return None
        if not (isinstance(axes, list) and isinstance(values, list)):
            return None
        if len(axes) != len(values) or not isinstance(rows, int):
            return None
        if not isinstance(reference, bool):
            return None
        return cls(
            signature=signature,
            chunk=chunk,
            axes=tuple(axes),
            values=tuple(tuple(v) for v in values),
            rows=rows,
            reference=reference,
        )


@dataclass
class StorePlan:
    """What the store knows about one requested grid.

    ``state`` is ``"hit"`` (a stored view covers the exact grid, chunk
    mapped), ``"delta"`` (some rows gather from stored views; ``missing``
    lists the grid indices to compute) or ``"miss"`` (nothing reusable).
    A plan is also the write half: :meth:`ResultStore.commit` takes it
    back with the computed points and assembles the new view.
    """

    family: str
    directory: Path
    signature: str
    axes: tuple[str, ...]
    values: tuple[tuple, ...]
    shape: tuple[int, ...]
    n_rows: int
    state: str = "miss"
    chunk: np.ndarray | None = None
    reference: dict | None = None
    sources: list[np.ndarray] = field(default_factory=list)
    source_view: np.ndarray | None = None
    source_row: np.ndarray | None = None
    missing: tuple[int, ...] = ()

    @property
    def reused(self) -> int:
        return self.n_rows - len(self.missing) if self.state != "miss" else 0


def _locate(
    view: _View,
    axes: tuple[str, ...],
    values: tuple[tuple, ...],
    shape: tuple[int, ...],
) -> np.ndarray | None:
    """Rows of ``view`` holding each point of the requested product grid.

    Returns a flat int array over the requested grid (row-major), ``-1``
    where the view lacks the point, or ``None`` when the axes differ.
    Pure stride arithmetic: both grids are cartesian products, so a
    point's row is the dot of its per-axis positions with the view's
    strides — no per-point dict hashing over million-row views.
    """
    if view.axes != axes:
        return None
    if not axes:
        return np.zeros(1, dtype=np.int64) if view.rows >= 1 else None
    mapped_axes = []
    for requested, stored in zip(values, view.values):
        positions = {_axis_token(v): i for i, v in enumerate(stored)}
        mapped_axes.append(
            np.array(
                [positions.get(_axis_token(v), -1) for v in requested],
                dtype=np.int64,
            )
        )
    strides = _strides(tuple(len(v) for v in view.values))
    dimensions = len(axes)
    offset = np.zeros(shape, dtype=np.int64)
    valid = np.ones(shape, dtype=bool)
    for k, mapped in enumerate(mapped_axes):
        broadcast = [1] * dimensions
        broadcast[k] = len(mapped)
        axis_positions = mapped.reshape(broadcast)
        valid &= axis_positions >= 0
        offset = offset + np.where(axis_positions >= 0, axis_positions, 0) * strides[k]
    return np.where(valid, offset, -1).ravel()


class ResultStore:
    """The columnar store: plan reads, commit writes, observable counters.

    One instance per runner or service; counters are thread-safe and
    surface on ``/healthz`` and ``scenario sweep --stats``.  All disk
    state is crash-safe and shared between instances — the files are the
    source of truth, instances only hold counters.
    """

    def __init__(
        self,
        directory: str | Path | None = None,
        registry: MetricsRegistry | None = None,
    ) -> None:
        base = Path(directory) if directory is not None else _default_root()
        self.directory = base / STORE_SUBDIR
        # Counters live on a metrics registry: private by default (unit
        # tests assert exact values on fresh instances), shared when the
        # service passes its own so ``GET /metrics`` sees them.
        self.registry = registry if registry is not None else MetricsRegistry()
        self._counters = {
            short: self.registry.counter(name, f"Store {short.replace('_', ' ')}")
            for short, name in _COUNTER_NAMES.items()
        }

    # -- counters ----------------------------------------------------------

    def _count(self, **deltas: int) -> None:
        for name, delta in deltas.items():
            self._counters[name].inc(delta)

    def stats(self) -> dict:
        """The serving counters (the ``/healthz`` ``store`` block).

        Historical short keys, read through the registry counters.
        """
        return {short: int(c.value) for short, c in self._counters.items()}

    # -- manifest and chunk I/O --------------------------------------------

    def family_dir(self, family: str) -> Path:
        return self.directory / family

    def _read_manifest(
        self, directory: Path, spec: "ScenarioSpec"
    ) -> tuple[dict, list[_View]] | None:
        """The family manifest, or ``None`` when absent/corrupt/stale.

        Manifests are replaced atomically, so a reader sees a whole
        document or the previous one — never a torn write.  Anything
        structurally off (version bump, workers mismatch after a hash
        collision, hand-edited JSON) degrades to a miss.
        """
        try:
            payload = json.loads((directory / MANIFEST_NAME).read_text())
        except (OSError, json.JSONDecodeError, UnicodeDecodeError):
            return None
        if not isinstance(payload, dict) or payload.get("store") != STORE_VERSION:
            return None
        if payload.get("workers") != [int(n) for n in spec.workers]:
            return None
        raw_views = payload.get("views")
        if not isinstance(raw_views, list):
            return None
        views = []
        for entry in raw_views:
            view = _View.from_manifest(entry)
            if view is not None:
                views.append(view)
        return payload, views

    def _open_chunk(
        self, directory: Path, view: _View, worker_count: int
    ) -> np.ndarray | None:
        """Memory-map one view chunk; shape-checked, ``None`` on any rot."""
        try:
            array = np.load(directory / view.chunk, mmap_mode="r")
        except (OSError, ValueError):
            return None
        if array.dtype.names != _CHUNK_FIELDS:
            return None
        if array.dtype["times_s"].shape != (worker_count,):
            return None
        if array.ndim != 1 or len(array) != view.rows + int(view.reference):
            return None
        self._count(bytes_mapped=int(array.nbytes))
        return array

    # -- the read half -----------------------------------------------------

    def plan(self, spec: "ScenarioSpec") -> StorePlan:
        """Diff the spec's grid against the stored views.

        Never raises for on-disk state: worst case is a ``"miss"`` plan
        and a full compute, exactly the blob cache's corrupt-entry
        contract.
        """
        start = time.perf_counter()
        span = tracer().span("store.plan")
        with span:
            plan = self._plan(spec)
            span.set(
                state=plan.state,
                rows=plan.n_rows,
                missing=len(plan.missing),
            )
        _PLAN_SECONDS.observe(time.perf_counter() - start)
        return plan

    def _plan(self, spec: "ScenarioSpec") -> StorePlan:
        family = family_key(spec)
        directory = self.family_dir(family)
        axes, values, shape = grid_geometry(spec)
        n_rows = int(np.prod(shape, dtype=np.int64)) if shape else 1
        signature = sweep_signature(axes, values)
        plan = StorePlan(
            family=family,
            directory=directory,
            signature=signature,
            axes=axes,
            values=values,
            shape=shape,
            n_rows=n_rows,
            missing=tuple(range(n_rows)),
        )
        loaded = self._read_manifest(directory, spec)
        if loaded is None:
            return plan
        _, views = loaded
        worker_count = len(spec.workers)

        # Exact-signature fast path: the whole grid in one stored chunk.
        for view in reversed(views):
            if view.signature != signature or view.rows != n_rows:
                continue
            if spec.sweep and not view.reference:
                continue
            chunk = self._open_chunk(directory, view, worker_count)
            if chunk is None:
                continue
            plan.state = "hit"
            plan.chunk = chunk
            if view.reference:
                plan.reference = materialize_point(
                    chunk, n_rows, spec.workers, has_crossover=False
                )
            plan.missing = ()
            self._count(hits=1, points_reused=n_rows)
            return plan

        # Point-level diff: gather rows from any view sharing the axes,
        # newest view first (later commits supersede earlier ones).
        source_view = np.full(n_rows, -1, dtype=np.int64)
        source_row = np.full(n_rows, -1, dtype=np.int64)
        for view in reversed(views):
            if not (source_view < 0).any():
                break
            rows = _locate(view, axes, values, shape)
            if rows is None:
                continue
            usable = (source_view < 0) & (rows >= 0)
            if not usable.any():
                continue
            chunk = self._open_chunk(directory, view, worker_count)
            if chunk is None:
                continue
            index = len(plan.sources)
            plan.sources.append(chunk)
            source_view[usable] = index
            source_row[usable] = rows[usable]
        if plan.sources:
            plan.state = "delta"
            plan.source_view = source_view
            plan.source_row = source_row
            plan.missing = tuple(int(i) for i in np.nonzero(source_view < 0)[0])
        return plan

    def points(self, spec: "ScenarioSpec", chunk: np.ndarray) -> LazyPoints:
        """Wrap a view chunk as the result's lazy point sequence.

        Swept chunks carry a trailing reference row; the point sequence
        covers grid rows only (the slice is a numpy view, not a copy).
        """
        _axes, _values, shape = grid_geometry(spec)
        n_rows = int(np.prod(shape, dtype=np.int64)) if shape else 1
        return LazyPoints(chunk[:n_rows], list(spec.workers), bool(spec.sweep))

    # -- the write half ----------------------------------------------------

    def commit(
        self,
        spec: "ScenarioSpec",
        plan: StorePlan,
        computed: dict[int, dict],
        reference: dict | None = None,
    ) -> np.ndarray:
        """Assemble and persist the plan's view; returns the full chunk.

        ``computed`` maps grid index → freshly evaluated point dict (the
        plan's ``missing`` indices); every other row gathers column-wise
        from the plan's source chunks.  A swept view's reference point
        becomes the chunk's trailing row (the manifest only flags it).
        The crossover column is derived here for *all* grid rows against
        this view's own reference — a reused point's stored crossover
        belonged to another grid's reference (seeded backends give each
        grid its own reference times), so it must never be carried over.
        """
        start = time.perf_counter()
        span = tracer().span("store.commit")
        with span:
            out = self._commit(spec, plan, computed, reference)
            span.set(
                state=plan.state,
                rows=plan.n_rows,
                computed=len(computed),
                reused=plan.reused,
            )
        _COMMIT_SECONDS.observe(time.perf_counter() - start)
        return out

    def _commit(
        self,
        spec: "ScenarioSpec",
        plan: StorePlan,
        computed: dict[int, dict],
        reference: dict | None = None,
    ) -> np.ndarray:
        worker_count = len(spec.workers)
        if spec.sweep and reference is None:
            raise ScenarioError(
                "a swept view cannot commit without its reference point"
            )
        metas: dict[int, bytes] = {}
        for index, point in computed.items():
            metas[index] = _point_meta(point)
        if reference is not None:
            metas[plan.n_rows] = _point_meta(reference)
        meta_width = max((len(m) for m in metas.values()), default=1)
        for source in plan.sources:
            meta_width = max(meta_width, source.dtype["meta"].itemsize)
        total_rows = plan.n_rows + (1 if reference is not None else 0)
        out = np.zeros(total_rows, dtype=_chunk_dtype(worker_count, meta_width))
        if plan.source_view is not None:
            for index, source in enumerate(plan.sources):
                mask = plan.source_view == index
                if not mask.any():
                    continue
                rows = plan.source_row[mask]
                for name in ("times_s", "meta"):
                    out[name][: plan.n_rows][mask] = source[name][rows]
        written = dict(computed)
        if reference is not None:
            written[plan.n_rows] = reference
        for index, point in written.items():
            out["times_s"][index] = point["times_s"]
            out["meta"][index] = metas[index]
        out["crossover"] = _NO_CROSSOVER
        if spec.sweep:
            self._crossover_column(out[: plan.n_rows], reference)
        self._write_chunk(plan, out)
        self._record_view(spec, plan, reference)
        if plan.state == "miss":
            self._count(misses=1, points_computed=len(computed))
        else:
            self._count(
                deltas=1,
                delta_points=len(computed),
                points_reused=plan.reused,
                points_computed=len(computed),
            )
        return out

    @staticmethod
    def _crossover_column(out: np.ndarray, reference: dict) -> None:
        """Vectorized twin of ``sweep._attach_crossovers``: the smallest
        worker count strictly beating the reference time, else -1."""
        reference_times = np.asarray(reference["times_s"], dtype=float)
        workers = np.asarray(reference["workers"], dtype=np.int64)
        wins = out["times_s"] < reference_times[None, :]
        first = np.argmax(wins, axis=1)
        out["crossover"] = np.where(wins.any(axis=1), workers[first], _NO_CROSSOVER)

    def _write_chunk(self, plan: StorePlan, array: np.ndarray) -> None:
        name = chunk_name(plan.signature)
        directory = plan.directory
        # Bounded retries cover an external `rm -rf` of the family dir
        # between mkdir and replace; clear()/gc() never remove live dirs.
        for _attempt in range(8):
            _ensure_dir(directory)
            try:
                handle, temp_name = tempfile.mkstemp(
                    dir=directory, prefix=".tmp-", suffix=".part"
                )
            except FileNotFoundError:
                continue
            try:
                with os.fdopen(handle, "wb") as stream:
                    np.save(stream, array)
                os.replace(temp_name, directory / name)
                return
            except FileNotFoundError:
                _unlink_quiet(temp_name)
                continue
            except BaseException:
                _unlink_quiet(temp_name)
                raise
        raise ScenarioError(
            f"could not write store chunk {name!r}: {directory} keeps vanishing"
        )

    def _record_view(
        self, spec: "ScenarioSpec", plan: StorePlan, reference: dict | None
    ) -> None:
        """Append/replace the view entry (read-modify-replace manifest).

        Concurrent committers of *different* views may lose each other's
        entry (last writer wins); the loser's chunk merely becomes an
        orphan a later run recomputes and gc() eventually removes —
        never a correctness problem, because chunks are immutable and
        signature-named, so an entry can only ever point at complete
        data for exactly its grid.
        """
        entry = {
            "signature": plan.signature,
            "chunk": chunk_name(plan.signature),
            "axes": list(plan.axes),
            "values": [list(v) for v in plan.values],
            "rows": plan.n_rows,
            "reference": reference is not None,
        }
        directory = plan.directory
        path = directory / MANIFEST_NAME
        for _attempt in range(8):
            loaded = self._read_manifest(directory, spec)
            if loaded is None:
                manifest = {
                    "store": STORE_VERSION,
                    "family": plan.family,
                    "scenario": spec.name,
                    "workers": [int(n) for n in spec.workers],
                    "views": [],
                }
            else:
                manifest = loaded[0]
            views = [
                view
                for view in manifest.get("views", [])
                if isinstance(view, dict) and view.get("signature") != plan.signature
            ]
            views.append(entry)
            manifest["views"] = views
            _ensure_dir(directory)
            try:
                handle, temp_name = tempfile.mkstemp(
                    dir=directory, prefix=".tmp-", suffix=".part"
                )
            except FileNotFoundError:
                continue
            try:
                with os.fdopen(handle, "w") as stream:
                    json.dump(manifest, stream)
                os.replace(temp_name, path)
                return
            except FileNotFoundError:
                _unlink_quiet(temp_name)
                continue
            except BaseException:
                _unlink_quiet(temp_name)
                raise
        raise ScenarioError(
            f"could not record store view in {path}: directory keeps vanishing"
        )

    # -- maintenance -------------------------------------------------------

    def clear(self) -> int:
        """Delete every stored family; returns how many *entries* went.

        Counts manifests (one per family), not stray files.  Files are
        unlinked individually — never the directory — so a concurrent
        writer's ``os.replace`` into a family dir cannot crash; its
        orphaned result is simply recomputed next time.  Stale temp
        files from crashed writers go too; fresh in-flight ones survive.
        """
        if not self.directory.exists():
            return 0
        removed = 0
        for family_dir in sorted(self.directory.iterdir()):
            if not family_dir.is_dir():
                continue
            manifest = family_dir / MANIFEST_NAME
            if manifest.exists():
                removed += 1
            manifest.unlink(missing_ok=True)
            for chunk in family_dir.glob("*.npy"):
                chunk.unlink(missing_ok=True)
            _remove_stale_temps(family_dir, STALE_TEMP_AGE_S)
        return removed

    def gc(self, max_age_s: float = STALE_TEMP_AGE_S) -> dict:
        """Remove garbage without touching live data; returns counts.

        Garbage is: stale writer temps, chunks no manifest references
        (lost manifest races, interrupted commits) once they are old
        enough to not be a commit in flight, structurally invalid
        manifests, and empty family directories.
        """
        counts = {
            "stale_temps": 0,
            "orphan_chunks": 0,
            "corrupt_manifests": 0,
            "empty_dirs": 0,
        }
        if not self.directory.exists():
            return counts
        now = time.time()
        for family_dir in sorted(self.directory.iterdir()):
            if not family_dir.is_dir():
                continue
            counts["stale_temps"] += _remove_stale_temps(family_dir, max_age_s, now)
            manifest_path = family_dir / MANIFEST_NAME
            referenced: set[str] = set()
            if manifest_path.exists():
                try:
                    payload = json.loads(manifest_path.read_text())
                except (OSError, json.JSONDecodeError, UnicodeDecodeError):
                    payload = None
                if not isinstance(payload, dict) or payload.get("store") != STORE_VERSION:
                    manifest_path.unlink(missing_ok=True)
                    counts["corrupt_manifests"] += 1
                else:
                    referenced = {
                        view.get("chunk")
                        for view in payload.get("views", ())
                        if isinstance(view, dict)
                    }
            for chunk in family_dir.glob("*.npy"):
                if chunk.name in referenced:
                    continue
                try:
                    if now - chunk.stat().st_mtime <= max_age_s:
                        continue
                    chunk.unlink()
                    counts["orphan_chunks"] += 1
                except OSError:
                    continue
            try:
                family_dir.rmdir()
                counts["empty_dirs"] += 1
            except OSError:
                pass
        return counts

    def disk_stats(self) -> dict:
        """What is on disk (the ``scenario cache stats`` report).

        Canonical field names follow the registry scheme's nouns:
        ``points_stored`` and ``bytes_stored``.  The pre-telemetry names
        (``grid_points``, ``chunk_bytes``) ride along as deprecated
        aliases — ``scenario cache stats`` and ``/healthz`` used to
        disagree on what to call the same quantities.
        """
        families = views = rows = 0
        chunk_bytes = 0
        temp_files = 0
        if self.directory.exists():
            for family_dir in self.directory.iterdir():
                if not family_dir.is_dir():
                    continue
                try:
                    payload = json.loads((family_dir / MANIFEST_NAME).read_text())
                except (OSError, json.JSONDecodeError, UnicodeDecodeError):
                    payload = None
                if isinstance(payload, dict) and payload.get("store") == STORE_VERSION:
                    families += 1
                    for view in payload.get("views", ()):
                        if isinstance(view, dict) and isinstance(view.get("rows"), int):
                            views += 1
                            rows += view["rows"]
                for chunk in family_dir.glob("*.npy"):
                    try:
                        chunk_bytes += chunk.stat().st_size
                    except OSError:
                        continue
                temp_files += len(list(family_dir.glob(".tmp-*.part")))
        return {
            "families": families,
            "views": views,
            "points_stored": rows,
            "bytes_stored": chunk_bytes,
            "temp_files": temp_files,
            # Deprecated aliases (pre-telemetry names), kept one release.
            "grid_points": rows,
            "chunk_bytes": chunk_bytes,
        }

    def verify(self) -> dict:
        """Structural consistency report over everything on disk.

        Walks every family: manifests must parse and carry the current
        store version, every referenced chunk must load with the
        manifest's declared geometry.  ``temp_files`` counts in-flight
        (or crash-orphaned) ``.part`` temps — a crashed writer leaves a
        temp and an unreferenced chunk at worst, never a broken view,
        which is exactly what the shard crash-injection suite asserts
        after killing a worker mid-commit.  Read-only apart from the
        ``bytes_mapped`` counter the chunk loads bump.
        """
        report = {
            "families": 0,
            "views": 0,
            "broken_manifests": 0,
            "broken_chunks": 0,
            "temp_files": 0,
        }
        if not self.directory.exists():
            return report
        for family_dir in sorted(self.directory.iterdir()):
            if not family_dir.is_dir():
                continue
            report["temp_files"] += len(list(family_dir.glob(".tmp-*.part")))
            manifest_path = family_dir / MANIFEST_NAME
            if not manifest_path.exists():
                continue
            try:
                payload = json.loads(manifest_path.read_text())
            except (OSError, json.JSONDecodeError, UnicodeDecodeError):
                report["broken_manifests"] += 1
                continue
            if not isinstance(payload, dict) or payload.get("store") != STORE_VERSION:
                report["broken_manifests"] += 1
                continue
            workers = payload.get("workers")
            if not isinstance(workers, list) or not workers:
                report["broken_manifests"] += 1
                continue
            report["families"] += 1
            for entry in payload.get("views", ()):
                view = _View.from_manifest(entry)
                if view is None:
                    report["broken_manifests"] += 1
                    continue
                report["views"] += 1
                if self._open_chunk(family_dir, view, len(workers)) is None:
                    report["broken_chunks"] += 1
        return report
