"""Progressive grid refinement: spend evaluations only where the curve
is uncertain.

A dense worker grid spends most of its evaluations where the curve is
boring — the long tail past the knee, the smooth ramp before it.  The
interesting structure is the minimum of ``t(n)`` (the optimal worker
count) and the *knee* where the speedup first reaches a fraction of its
peak.  :func:`refine_worker_grid` evaluates a coarse log-spaced subset
first, then subdivides golden-section style — the same interval-shrink
factor ``_INVPHI`` that :func:`repro.core.scaling.refine_optimal_workers`
uses over the continuous model, applied here in *index space* over the
dense grid — only around those two features, until the brackets are
tight.

The module is deliberately spec-free: the caller hands in an evaluate
callback (``subset -> times``) and the dense grid; refinement neither
knows nor cares whether the times come from the analytic, simulated or
network backend.  It is only *sound* for pointwise backends (a point's
time must not depend on which other points are requested) — the sweep
runner enforces that before calling in.
"""

from __future__ import annotations

import math
from collections.abc import Callable, Sequence
from dataclasses import dataclass

import numpy as np

from repro.core.errors import ScenarioError

#: Inverse golden ratio — interval-shrink factor shared with
#: :func:`repro.core.scaling.refine_optimal_workers`.
_INVPHI = (math.sqrt(5.0) - 1.0) / 2.0

#: Points in the initial coarse pass (endpoints + log-spaced interior).
COARSE_POINTS = 7

#: "Knee" speedup fraction: the smallest worker count reaching this
#: fraction of the peak speedup is the curve's practical elbow.
KNEE_FRACTION = 0.95


@dataclass(frozen=True)
class RefinedCurve:
    """The outcome of a progressive refinement over one dense grid.

    ``workers`` is the ascending subset actually evaluated (always
    containing both grid endpoints), ``times_s`` their times in the same
    order, ``baseline_time`` the time at the baseline worker count, and
    ``evaluations`` the total number of point evaluations spent —
    including an off-grid baseline, when the baseline is not in the
    dense grid.
    """

    workers: tuple[int, ...]
    times_s: tuple[float, ...]
    baseline_time: float
    evaluations: int


def _golden_split(a: int, b: int) -> int:
    """An interior index splitting ``(a, b)`` at the golden point.

    Clamped to land strictly inside the bracket; callers only split
    non-adjacent brackets, so an interior index always exists.
    """
    split = a + round((b - a) * (1.0 - _INVPHI))
    return min(max(split, a + 1), b - 1)


def _coarse_indices(count: int, baseline_index: int | None) -> list[int]:
    """Endpoints, the baseline and a log-spaced interior skeleton."""
    picks = {0, count - 1}
    if baseline_index is not None:
        picks.add(baseline_index)
    for x in np.geomspace(1, count, num=COARSE_POINTS):
        picks.add(min(int(round(x)) - 1, count - 1))
    return sorted(picks)


def refine_worker_grid(
    evaluate: Callable[[Sequence[int]], Sequence[float]],
    workers: Sequence[int],
    baseline_workers: int,
    knee_fraction: float = KNEE_FRACTION,
) -> RefinedCurve:
    """Progressively evaluate ``workers``, densifying only near the
    time minimum and the speedup knee.

    ``evaluate`` maps a list of worker counts to their times (one
    batched backend call per round).  The returned curve matches a dense
    evaluation at every point it contains — refinement decides *which*
    points to evaluate, never *what* their values are.

    The loop keeps two moving targets: the index of the best (lowest)
    time, and the knee — the smallest evaluated worker count whose
    speedup reaches ``knee_fraction`` of the evaluated peak.  Each round
    golden-splits every non-adjacent evaluated bracket surrounding a
    target; when all surrounding brackets are adjacent (no dense-grid
    point remains between the neighbours), the features are pinned
    exactly and the loop stops.
    """
    grid = [int(n) for n in workers]
    if not grid:
        raise ScenarioError("refinement needs a non-empty worker grid")
    if sorted(set(grid)) != grid:
        raise ScenarioError("refinement needs a strictly increasing worker grid")
    if not 0.0 < knee_fraction <= 1.0:
        raise ScenarioError(
            f"knee_fraction must be in (0, 1], got {knee_fraction}"
        )
    count = len(grid)
    baseline_index = None
    baseline = int(baseline_workers)
    if baseline in grid:
        baseline_index = grid.index(baseline)

    times: dict[int, float] = {}
    evaluations = 0

    def evaluate_indices(indices: Sequence[int]) -> None:
        nonlocal evaluations
        fresh = [i for i in indices if i not in times]
        if not fresh:
            return
        values = evaluate([grid[i] for i in fresh])
        evaluations += len(fresh)
        for i, value in zip(fresh, values):
            times[i] = float(value)

    evaluate_indices(_coarse_indices(count, baseline_index))
    if baseline_index is not None:
        baseline_time = times[baseline_index]
    else:
        baseline_time = float(evaluate([baseline])[0])
        evaluations += 1

    # Bounded by the dense grid size: every round evaluates at least one
    # new index or stops, so 2 * count rounds can never be exhausted.
    for _round in range(2 * count):
        known = sorted(times)
        # Feature 1: the time minimum (leftmost on plateaus — matches
        # SpeedupCurve.optimal_workers' smallest-n tie-break).
        best = min(known, key=lambda i: (times[i], i))
        # Feature 2: the knee — smallest n reaching knee_fraction of
        # the currently known peak speedup.
        speedups = {i: baseline_time / times[i] for i in known}
        peak = max(speedups.values())
        knee = min(
            (i for i in known if speedups[i] >= knee_fraction * peak),
            default=best,
        )
        targets = []
        for feature in {best, knee}:
            at = known.index(feature)
            if at > 0 and feature - known[at - 1] > 1:
                targets.append(_golden_split(known[at - 1], feature))
            if at < len(known) - 1 and known[at + 1] - feature > 1:
                targets.append(_golden_split(feature, known[at + 1]))
        targets = [i for i in set(targets) if i not in times]
        if not targets:
            break
        evaluate_indices(sorted(targets))

    ordered = sorted(times)
    return RefinedCurve(
        workers=tuple(grid[i] for i in ordered),
        times_s=tuple(times[i] for i in ordered),
        baseline_time=baseline_time,
        evaluations=evaluations,
    )
