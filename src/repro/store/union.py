"""Zero-copy union serving: one shared buffer, per-member views.

The service coalescer batches requests for the same evaluation target
and evaluates the union of their grids once.  Before the store, that
union came back as per-request ``SpeedupCurve`` objects — every member
got its own arrays.  Here the union lands in **one** shared time buffer
and each member's response is a :class:`CurveView`: index arrays into
that buffer, with speedups/efficiencies derived on serialisation using
exactly the :class:`repro.core.speedup.SpeedupCurve` arithmetic, so the
wire bytes cannot drift from the non-coalesced path.

Only sound for *pointwise* backends (``backend.pointwise`` is True): a
grid point's time must depend only on its own worker count.  The
calibrated backend fits its model against the requested grid, so it
opts out and keeps the per-member ``curves()`` path.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np


class CurveView:
    """One member's curve, sliced out of the coalesced union buffer.

    Mirrors the ``SpeedupCurve`` fields the service serialises; every
    derived quantity reproduces ``repro.core.speedup`` exactly —
    same operation order, same tie-breaks, same tolerance — so a view's
    payload is byte-identical to a standalone evaluation of its grid.
    """

    __slots__ = ("workers", "baseline_workers", "label", "_buffer", "_indices", "_baseline_index")

    def __init__(
        self,
        workers: tuple[int, ...],
        baseline_workers: int,
        label: str,
        buffer: np.ndarray,
        indices: np.ndarray,
        baseline_index: int,
    ) -> None:
        self.workers = workers
        self.baseline_workers = baseline_workers
        self.label = label
        self._buffer = buffer
        self._indices = indices
        self._baseline_index = baseline_index

    @property
    def times(self) -> np.ndarray:
        return self._buffer[self._indices]

    @property
    def baseline_time(self) -> float:
        return float(self._buffer[self._baseline_index])

    @property
    def speedups(self) -> np.ndarray:
        return self.baseline_time / self.times

    @property
    def efficiencies(self) -> np.ndarray:
        workers = np.asarray(self.workers, dtype=float)
        return self.speedups * self.baseline_workers / workers

    @property
    def optimal_workers(self) -> int:
        speedups = self.speedups
        workers = np.asarray(self.workers)
        return int(np.min(workers[speedups == speedups.max()]))

    @property
    def peak_speedup(self) -> float:
        return float(self.speedups.max())

    @property
    def is_scalable(self) -> bool:
        return bool((self.speedups > 1.0 + 1e-12).any())


def evaluate_union(
    backend,
    target,
    requests: Sequence[tuple[Sequence[int], int]],
    label: str = "",
) -> tuple[list[CurveView], int]:
    """Evaluate the union grid once; return per-request views into it.

    ``requests`` is ``[(workers, baseline_workers), ...]``.  The union
    of all grids and baselines is evaluated in one ``backend.evaluate``
    call into a single float64 buffer; each request gets a
    :class:`CurveView` of its own grid.  Returns the views and the
    union size (the shared-buffer point count, for the coalescer's
    savings counter).

    Byte-identity argument: the pre-store coalescer already evaluated
    the sorted union of grids+baselines in one call (``curves()`` does
    the same internally), so the buffer holds the very same times; the
    views merely index it instead of copying slices per member.
    """
    union: set[int] = set()
    for workers, baseline in requests:
        union.update(int(n) for n in workers)
        union.add(int(baseline))
    grid = sorted(union)
    position = {n: i for i, n in enumerate(grid)}
    buffer = np.asarray(backend.evaluate(target, grid), dtype=float)
    views = []
    for workers, baseline in requests:
        workers = tuple(int(n) for n in workers)
        indices = np.array([position[n] for n in workers], dtype=np.intp)
        views.append(
            CurveView(
                workers=workers,
                baseline_workers=int(baseline),
                label=label,
                buffer=buffer,
                indices=indices,
                baseline_index=position[int(baseline)],
            )
        )
    return views, len(grid)
