"""Columnar result store, zero-copy union serving, grid refinement.

``repro.store`` is a leaf package: it imports numpy and ``repro.core``
errors only, never ``repro.scenarios`` (which imports *it*).  The three
modules are independently useful:

- :mod:`repro.store.columnar` — the memory-mapped point-level store
  under :class:`repro.scenarios.sweep.SweepRunner`;
- :mod:`repro.store.union` — shared-buffer curve views for the service
  coalescer;
- :mod:`repro.store.refine` — progressive worker-grid refinement.
"""

from repro.store.columnar import (
    LazyPoints,
    ResultStore,
    StorePlan,
    family_key,
    grid_geometry,
    materialize_point,
    sweep_signature,
)
from repro.store.refine import RefinedCurve, refine_worker_grid
from repro.store.union import CurveView, evaluate_union

__all__ = [
    "CurveView",
    "LazyPoints",
    "RefinedCurve",
    "ResultStore",
    "StorePlan",
    "evaluate_union",
    "family_key",
    "grid_geometry",
    "materialize_point",
    "refine_worker_grid",
    "sweep_signature",
]
