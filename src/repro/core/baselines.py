"""Classical scaling laws and related-work models used as baselines.

The paper positions its framework against:

* **Amdahl's law** [2] — strong scaling with a fixed serial fraction.
* **Gustafson's law** [3] — weak ("scaled") speedup.
* **Sparks et al.** [9] — ``t(n) = compute / n + comm * n`` (linear
  communication only; the paper shows this mis-models tree/all-reduce).
* **Ernest** (Venkataraman et al.) [11] — ``t(n) = a + b/n + c*log n + d*n``
  fitted by non-negative least squares on profiling runs.

Each baseline implements :class:`~repro.core.model.ScalabilityModel`, so
the ablation benches can overlay all of them on the same workload.
"""

from __future__ import annotations

import math
from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np
import scipy.optimize

from repro.core.communication import TorrentBroadcast
from repro.core.complexity import (
    CommunicationCost,
    ComputationCost,
    CostTerm,
    FixedCost,
    NamedCost,
    OverheadCost,
    SumCost,
)
from repro.core.errors import CalibrationError, ModelError
from repro.core.model import ScalabilityModel


@dataclass(frozen=True)
class AmdahlLaw(ScalabilityModel):
    """Amdahl's law: ``s(n) = 1 / (f + (1 - f)/n)`` for serial fraction f.

    Expressed as a time model with unit single-node time so it plugs into
    the shared speedup tooling.
    """

    serial_fraction: float
    single_node_time: float = 1.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.serial_fraction <= 1.0:
            raise ModelError(f"serial_fraction must be in [0, 1], got {self.serial_fraction}")
        if self.single_node_time <= 0:
            raise ModelError(f"single_node_time must be positive, got {self.single_node_time}")

    def cost(self) -> CostTerm:
        f = self.serial_fraction
        return SumCost(
            (
                NamedCost("serial", FixedCost(self.single_node_time * f)),
                NamedCost(
                    "parallel",
                    ComputationCost(
                        total_operations=self.single_node_time * (1.0 - f), flops=1.0
                    ),
                    kind="computation",
                ),
            )
        )

    @property
    def max_speedup(self) -> float:
        """The asymptotic speedup ceiling ``1/f`` (infinite for f = 0)."""
        if self.serial_fraction == 0:
            return math.inf
        return 1.0 / self.serial_fraction


@dataclass(frozen=True)
class GustafsonLaw:
    """Gustafson's scaled speedup: ``s(n) = n - f * (n - 1)``.

    This is a *speedup* law for a workload grown with the machine, so it
    exposes ``speedup`` directly instead of a time function.
    """

    serial_fraction: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.serial_fraction <= 1.0:
            raise ModelError(f"serial_fraction must be in [0, 1], got {self.serial_fraction}")

    def speedup(self, workers: int) -> float:
        """Scaled speedup with ``workers`` nodes."""
        if workers < 1:
            raise ModelError(f"workers must be >= 1, got {workers}")
        return workers - self.serial_fraction * (workers - 1)


@dataclass(frozen=True)
class SparksModel(ScalabilityModel):
    """The cluster-size estimator of Sparks et al. [9].

    ``t(n) = compute_seconds / n + communication_seconds * n`` — parallel
    computation plus communication that grows linearly with the cluster,
    which is accurate for master-serialised gathers but pessimistic for
    tree or all-reduce collectives (the paper's critique).
    """

    compute_seconds: float
    communication_seconds: float
    fixed_seconds: float = 0.0

    def __post_init__(self) -> None:
        if self.compute_seconds < 0:
            raise ModelError(f"compute_seconds must be non-negative, got {self.compute_seconds}")
        if self.communication_seconds < 0:
            raise ModelError(
                f"communication_seconds must be non-negative, got {self.communication_seconds}"
            )
        if self.fixed_seconds < 0:
            raise ModelError(f"fixed_seconds must be non-negative, got {self.fixed_seconds}")

    def cost(self) -> CostTerm:
        return SumCost(
            (
                FixedCost(self.fixed_seconds),
                ComputationCost(total_operations=self.compute_seconds, flops=1.0),
                NamedCost(
                    "communication",
                    OverheadCost(seconds_per_worker=self.communication_seconds),
                    kind="communication",
                ),
            )
        )

    @property
    def analytic_optimum(self) -> float:
        """Continuous minimiser ``sqrt(compute / communication)``."""
        if self.communication_seconds == 0:
            return math.inf
        return math.sqrt(self.compute_seconds / self.communication_seconds)

    @classmethod
    def fit(cls, workers: Sequence[int], times: Sequence[float]) -> "SparksModel":
        """Fit the three coefficients by non-negative least squares."""
        features = _feature_matrix(workers, (lambda n: 1.0, lambda n: 1.0 / n, lambda n: float(n)))
        coeffs = _nnls(features, times)
        return cls(
            fixed_seconds=coeffs[0], compute_seconds=coeffs[1], communication_seconds=coeffs[2]
        )


@dataclass(frozen=True)
class ErnestModel(ScalabilityModel):
    """Ernest (Venkataraman et al.) [11]: ``a + b/n + c*log2(n) + d*n``.

    The paper notes this family needs experimental runs to estimate its
    parameters — exactly what :meth:`fit` does — whereas the paper's own
    models are built from hardware specifications alone.
    """

    fixed_seconds: float
    compute_seconds: float
    log_seconds: float
    linear_seconds: float

    def __post_init__(self) -> None:
        for name in ("fixed_seconds", "compute_seconds", "log_seconds", "linear_seconds"):
            value = getattr(self, name)
            if value < 0:
                raise ModelError(f"{name} must be non-negative, got {value}")

    def cost(self) -> CostTerm:
        # The smooth-log term is a torrent-shaped collective carrying
        # ``log_seconds`` worth of payload on a unit-bandwidth link.
        log_term = CommunicationCost(TorrentBroadcast(1.0), bits=self.log_seconds)
        return SumCost(
            (
                FixedCost(self.fixed_seconds),
                ComputationCost(total_operations=self.compute_seconds, flops=1.0),
                NamedCost("log", log_term, kind="communication"),
                NamedCost("linear", OverheadCost(seconds_per_worker=self.linear_seconds)),
            )
        )

    @classmethod
    def fit(cls, workers: Sequence[int], times: Sequence[float]) -> "ErnestModel":
        """Fit the four coefficients by non-negative least squares (as Ernest does)."""
        features = _feature_matrix(
            workers,
            (
                lambda n: 1.0,
                lambda n: 1.0 / n,
                lambda n: math.log2(n) if n > 1 else 0.0,
                lambda n: float(n),
            ),
        )
        coeffs = _nnls(features, times)
        return cls(
            fixed_seconds=coeffs[0],
            compute_seconds=coeffs[1],
            log_seconds=coeffs[2],
            linear_seconds=coeffs[3],
        )


def _feature_matrix(workers: Sequence[int], features) -> np.ndarray:
    if len(workers) == 0:
        raise CalibrationError("cannot fit a model to zero measurements")
    if any(n < 1 for n in workers):
        raise CalibrationError("worker counts must be >= 1")
    return np.array([[feature(n) for feature in features] for n in workers], dtype=float)


def _nnls(features: np.ndarray, times: Sequence[float]) -> np.ndarray:
    observed = np.asarray(times, dtype=float)
    if observed.ndim != 1 or observed.shape[0] != features.shape[0]:
        raise CalibrationError(
            f"times must be a vector matching {features.shape[0]} measurements"
        )
    if np.any(observed <= 0):
        raise CalibrationError("measured times must be positive")
    if features.shape[0] < features.shape[1]:
        raise CalibrationError(
            f"need at least {features.shape[1]} measurements, got {features.shape[0]}"
        )
    coeffs, _residual = scipy.optimize.nnls(features, observed)
    return coeffs
