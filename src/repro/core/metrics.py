"""Error metrics used to compare model estimates with measurements.

The paper reports the *mean absolute percentage error* (MAPE) between its
analytical speedup estimates and the empirical speedups; we provide that
plus the usual companions used in the calibration module.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.core.errors import ModelError


def _as_arrays(actual: Sequence[float], predicted: Sequence[float]) -> tuple[np.ndarray, np.ndarray]:
    actual_arr = np.asarray(actual, dtype=float)
    predicted_arr = np.asarray(predicted, dtype=float)
    if actual_arr.shape != predicted_arr.shape:
        raise ModelError(
            f"actual and predicted must have the same shape, got {actual_arr.shape} and {predicted_arr.shape}"
        )
    if actual_arr.size == 0:
        raise ModelError("cannot compute a metric over zero points")
    return actual_arr, predicted_arr


def mape(actual: Sequence[float], predicted: Sequence[float]) -> float:
    """Mean absolute percentage error, in percent.

    ``mape([1, 2], [1.1, 1.8]) == 10.0``.  Zero entries in ``actual`` are
    rejected because the metric is undefined there.
    """
    actual_arr, predicted_arr = _as_arrays(actual, predicted)
    if np.any(actual_arr == 0):
        raise ModelError("MAPE is undefined when an actual value is zero")
    return float(np.mean(np.abs((actual_arr - predicted_arr) / actual_arr)) * 100.0)


def rmse(actual: Sequence[float], predicted: Sequence[float]) -> float:
    """Root mean squared error, in the units of the inputs."""
    actual_arr, predicted_arr = _as_arrays(actual, predicted)
    return float(np.sqrt(np.mean((actual_arr - predicted_arr) ** 2)))


def max_absolute_percentage_error(actual: Sequence[float], predicted: Sequence[float]) -> float:
    """Worst-case absolute percentage error, in percent."""
    actual_arr, predicted_arr = _as_arrays(actual, predicted)
    if np.any(actual_arr == 0):
        raise ModelError("percentage error is undefined when an actual value is zero")
    return float(np.max(np.abs((actual_arr - predicted_arr) / actual_arr)) * 100.0)


def r_squared(actual: Sequence[float], predicted: Sequence[float]) -> float:
    """Coefficient of determination of ``predicted`` against ``actual``.

    Returns 1.0 for a perfect fit.  A constant ``actual`` series is rejected
    because the statistic is undefined there.
    """
    actual_arr, predicted_arr = _as_arrays(actual, predicted)
    total = float(np.sum((actual_arr - actual_arr.mean()) ** 2))
    if total == 0:
        raise ModelError("R^2 is undefined for a constant actual series")
    residual = float(np.sum((actual_arr - predicted_arr) ** 2))
    return 1.0 - residual / total


def relative_error(actual: float, predicted: float) -> float:
    """Signed relative error ``(predicted - actual) / actual``."""
    if actual == 0:
        raise ModelError("relative error is undefined for actual == 0")
    return (predicted - actual) / actual
