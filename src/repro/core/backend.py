"""Pluggable evaluation backends: one protocol from algebra to simulator.

The paper validates its closed-form models against cluster experiments
and names "a feedback loop from experiments" as future work.  This
module is the seam that makes both first-class: an
:class:`EvaluationBackend` answers "how long does this workload take at
``n`` workers, for a whole grid of ``n``" — and *how* it answers is
interchangeable:

* :class:`AnalyticBackend` evaluates the model's cost-term tree (one
  vectorized numpy call — the paper's no-test-runs approach);
* :class:`~repro.simulate.backend.SimulatedBackend` runs the workload on
  the discrete-event cluster (the "experiment", with jitter, stragglers
  and framework overhead);
* :class:`CalibratedBackend` closes the loop: it measures through
  another backend, fits a parametric family to the measurements via
  :mod:`repro.core.calibration`, and evaluates the fitted family.

Backends evaluate an :class:`EvaluationTarget` — the analytical model
plus, when the workload is BSP-expressible, its transfer-level
:class:`~repro.simulate.workload.SimulationWorkload` — so the same
target flows through scenario sweeps, figure experiments and the CLI
regardless of which backend answers.
"""

from __future__ import annotations

import functools
import time
from abc import ABC, abstractmethod
from collections.abc import Iterable
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, ClassVar

import numpy as np

from repro.core.calibration import CalibrationResult, feature_library, fit_linear_features
from repro.core.errors import ModelError
from repro.core.model import ScalabilityModel
from repro.core.speedup import SpeedupCurve
from repro.obs.metrics import get_registry
from repro.obs.trace import tracer

if TYPE_CHECKING:  # pragma: no cover - typing only, keeps core import-light
    from repro.simulate.workload import SimulationWorkload

# Every concrete backend's ``evaluate`` is wrapped (see
# ``EvaluationBackend.__init_subclass__``) to feed these: batch spans
# when tracing is on, counters + a latency histogram always.
_REG = get_registry()
_EVALUATIONS = _REG.counter(
    "repro_backends_evaluations_total", "Backend evaluate() batches"
)
_POINTS = _REG.counter(
    "repro_backends_points_total", "Grid points evaluated across all backends"
)
_EVAL_SECONDS = _REG.histogram(
    "repro_backends_evaluate_seconds", "Wall time of backend evaluate() batches"
)
_KIND_COUNTERS: dict[str, object] = {}


def _kind_counter(name: str):
    counter = _KIND_COUNTERS.get(name)
    if counter is None:
        counter = _REG.counter(
            f"repro_backends_{name}_evaluations_total",
            f"evaluate() batches answered by the {name} backend",
        )
        _KIND_COUNTERS[name] = counter
    return counter


def _instrumented(fn):
    """Wrap a backend ``evaluate`` with telemetry.

    Tracing off costs one attribute check plus two counter increments
    per *batch* (a batch is a whole worker grid, >= 100us of numpy
    work), which is what keeps the disabled-overhead bench under its
    2% floor.
    """

    @functools.wraps(fn)
    def evaluate(self, target, workers):
        start = time.perf_counter()
        span = tracer().span(
            "backends.evaluate",
            {"backend": self.name, "target": target.label or target.key},
        )
        with span:
            result = fn(self, target, workers)
            span.set(points=int(np.size(result)))
        _EVAL_SECONDS.observe(time.perf_counter() - start)
        _EVALUATIONS.inc()
        _POINTS.inc(int(np.size(result)))
        _kind_counter(self.name).inc()
        return result

    evaluate.__instrumented__ = True
    return evaluate


@dataclass(frozen=True)
class EvaluationTarget:
    """What a backend evaluates: a model, and optionally its simulation.

    ``workload`` is ``None`` when the scenario is not BSP-expressible
    (e.g. the shared-memory belief-propagation estimator); only the
    analytic and calibrated-over-analytic backends can evaluate such
    targets.  ``key`` is a stable content identity for the grid point —
    the simulated backend folds it into its seed derivation so results
    do not depend on which process evaluates the point.
    """

    model: ScalabilityModel
    workload: "SimulationWorkload | None" = None
    key: str = ""
    label: str = ""


def _as_grid(workers: Iterable[int]) -> tuple[int, ...]:
    grid = tuple(int(n) for n in workers)
    if not grid:
        raise ModelError("a backend evaluation needs at least one worker count")
    if any(n < 1 for n in grid):
        raise ModelError(f"worker counts must be >= 1, got {min(grid)}")
    return grid


class EvaluationBackend(ABC):
    """Maps an :class:`EvaluationTarget` and a worker grid to seconds."""

    #: Short identifier, also used in scenario specs and cache keys.
    name: ClassVar[str] = "abstract"

    #: True when a grid point's time depends only on its own worker
    #: count — the property that makes union evaluation (``curves``),
    #: shared-buffer serving (:mod:`repro.store.union`) and progressive
    #: refinement (:mod:`repro.store.refine`) sound.  The calibrated
    #: backend opts out: its fit couples every point of a grid.
    pointwise: ClassVar[bool] = True

    def __init_subclass__(cls, **kwargs) -> None:
        super().__init_subclass__(**kwargs)
        impl = cls.__dict__.get("evaluate")
        if impl is not None and not getattr(impl, "__instrumented__", False):
            cls.evaluate = _instrumented(impl)

    @abstractmethod
    def evaluate(self, target: EvaluationTarget, workers: Iterable[int]) -> np.ndarray:
        """Execution time at every grid point, in the model's units."""

    def config(self) -> dict:
        """JSON-serialisable description of this backend's knobs.

        Recorded in every sweep-point payload (and hence in exports), so
        a result file states how it was produced.  Cache *keys* do not
        read it — they come from the spec's content hash, whose backend
        block already encodes the same knobs.
        """
        return {"backend": self.name}

    def curve(
        self,
        target: EvaluationTarget,
        workers: Iterable[int],
        baseline_workers: int = 1,
        label: str = "",
    ) -> SpeedupCurve:
        """Evaluate the target and wrap the result as a speedup curve.

        The baseline time comes from the grid when the baseline count is
        on it, and from one extra single-point evaluation otherwise —
        never from a different backend.
        """
        grid = _as_grid(workers)
        times = tuple(float(t) for t in self.evaluate(target, grid))
        if baseline_workers in grid:
            baseline_time = times[grid.index(baseline_workers)]
        else:
            baseline_time = float(self.evaluate(target, (baseline_workers,))[0])
        return SpeedupCurve(
            workers=grid,
            times=times,
            baseline_time=baseline_time,
            baseline_workers=baseline_workers,
            label=label or target.label,
        )

    def curves(
        self,
        target: EvaluationTarget,
        requests: Iterable[tuple[Iterable[int], int]],
        label: str = "",
    ) -> list[SpeedupCurve]:
        """Answer several ``(workers, baseline_workers)`` queries at once.

        The coalescing primitive behind the evaluation service: all
        requested grids (and their baselines) merge into one sorted union
        grid, the target is evaluated *once*, and each request's curve is
        sliced out of the union.  Sound whenever a grid point's time
        depends only on its own worker count — true for the analytic
        backend (element-wise cost trees) and the simulated backend
        (per-``n`` engines with per-``n`` derived seeds), so the sliced
        curves are bit-identical to individually evaluated ones.  The
        calibrated backend overrides this: its fit couples every point of
        a grid, so its queries must not share evaluations.
        """
        queries = [(_as_grid(grid), int(baseline)) for grid, baseline in requests]
        if not queries:
            return []
        union: set[int] = set()
        for grid, baseline in queries:
            union.update(grid)
            union.add(baseline)
        union_grid = tuple(sorted(union))
        times = {
            n: float(t)
            for n, t in zip(union_grid, self.evaluate(target, union_grid))
        }
        return [
            SpeedupCurve(
                workers=grid,
                times=tuple(times[n] for n in grid),
                baseline_time=times[baseline],
                baseline_workers=baseline,
                label=label or target.label,
            )
            for grid, baseline in queries
        ]


class AnalyticBackend(EvaluationBackend):
    """The closed-form path: one batched cost-tree evaluation per grid."""

    name: ClassVar[str] = "analytic"

    def evaluate(self, target: EvaluationTarget, workers: Iterable[int]) -> np.ndarray:
        grid = _as_grid(workers)
        return np.asarray(target.model.times(np.asarray(grid, dtype=float)), dtype=float)


@dataclass(frozen=True)
class CalibrationOutcome:
    """A calibrated backend's fit, with everything the report needs."""

    features: str
    workers: tuple[int, ...]
    measured: tuple[float, ...]
    result: CalibrationResult

    @property
    def fitted(self) -> tuple[float, ...]:
        """The fitted family evaluated back on the measurement grid."""
        return tuple(self.result.model.time(n) for n in self.workers)


@dataclass(frozen=True)
class CalibratedBackend(EvaluationBackend):
    """The paper's future-work feedback loop, as a backend.

    Measures the target through ``source`` (any other backend), fits the
    named non-negative linear feature family (see
    :data:`~repro.core.calibration.FEATURE_LIBRARIES`) to the measured
    ``(workers, seconds)`` pairs, and evaluates the *fitted* family —
    a smooth, extrapolatable curve even when the source is stochastic.
    """

    source: EvaluationBackend = field(default_factory=AnalyticBackend)
    features: str = "ernest"

    name: ClassVar[str] = "calibrated"

    #: A fit couples every point of its grid: which workers are
    #: requested changes the fitted family, so union grids, shared
    #: buffers and refinement subsets would all change the answers.
    pointwise: ClassVar[bool] = False

    def calibrate(
        self, target: EvaluationTarget, workers: Iterable[int]
    ) -> CalibrationOutcome:
        """Measure through the source backend and fit the feature family."""
        grid = _as_grid(workers)
        measured = self.source.evaluate(target, grid)
        result = fit_linear_features(feature_library(self.features), grid, measured)
        return CalibrationOutcome(
            features=self.features,
            workers=grid,
            measured=tuple(float(t) for t in measured),
            result=result,
        )

    def evaluate(self, target: EvaluationTarget, workers: Iterable[int]) -> np.ndarray:
        outcome = self.calibrate(target, workers)
        return np.asarray(outcome.fitted, dtype=float)

    def curve(
        self,
        target: EvaluationTarget,
        workers: Iterable[int],
        baseline_workers: int = 1,
        label: str = "",
    ) -> SpeedupCurve:
        """Fit once on the grid; an off-grid baseline extrapolates the fit.

        The base implementation would re-*fit* on the single baseline
        point (impossible: a fit needs as many measurements as
        parameters); the fitted family itself is the right instrument
        for off-grid queries.
        """
        grid = _as_grid(workers)
        outcome = self.calibrate(target, grid)
        times = outcome.fitted
        if baseline_workers in grid:
            baseline_time = times[grid.index(baseline_workers)]
        else:
            baseline_time = outcome.result.model.time(baseline_workers)
        return SpeedupCurve(
            workers=grid,
            times=times,
            baseline_time=baseline_time,
            baseline_workers=baseline_workers,
            label=label or target.label,
        )

    def curves(
        self,
        target: EvaluationTarget,
        requests: Iterable[tuple[Iterable[int], int]],
        label: str = "",
    ) -> list[SpeedupCurve]:
        """Each query fits on its own grid — union evaluation would let
        one request's worker counts change another's fitted family."""
        return [
            self.curve(target, grid, baseline, label=label)
            for grid, baseline in requests
        ]

    def config(self) -> dict:
        return {
            "backend": self.name,
            "source": self.source.config(),
            "features": self.features,
        }
