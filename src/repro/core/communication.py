"""Communication time-complexity models (the ``fcm(M, n)`` of the paper).

Section III of the paper defines the communication time of a superstep as
``tcm = fcm(M, n)`` where ``M`` is the number of bits pushed through the
medium and the *shape* of ``fcm`` depends on the communication topology.
The related-work section criticises models that only support a linear
shape (Sparks et al.); this module provides the full set of shapes the
paper discusses:

* linear gather/scatter through a single master,
* logarithmic tree (and the torrent-like broadcast Spark uses),
* the two-wave ``ceil(sqrt(n))`` aggregation Spark's ``treeAggregate``
  performs (Figure 2),
* ring all-reduce (the MPI-style collective mentioned in related work),
* shuffle (the Hadoop/Spark repartitioning pattern),
* a centralised parameter server.

All models answer ``time(bits, workers)`` in seconds.  ``bits`` is the
payload one logical transfer carries (e.g. ``32 * W`` for a gradient);
each topology decides how many sequential transfer rounds it needs.
"""

from __future__ import annotations

import math
from abc import ABC
from dataclasses import dataclass

import numpy as np

from repro.core.errors import ModelError


def _check_inputs(bits: float, workers: int) -> None:
    if bits < 0:
        raise ModelError(f"bits must be non-negative, got {bits}")
    if workers < 1:
        raise ModelError(f"workers must be >= 1, got {workers}")


def _check_grid(bits: float, workers: np.ndarray) -> np.ndarray:
    if bits < 0:
        raise ModelError(f"bits must be non-negative, got {bits}")
    grid = np.asarray(workers, dtype=float)
    if grid.size and np.any(grid < 1):
        raise ModelError(f"workers must be >= 1, got {grid.min()}")
    return grid


@dataclass(frozen=True)
class CommunicationModel(ABC):
    """Base class for communication topologies.

    Parameters
    ----------
    bandwidth_bps:
        Point-to-point bandwidth between two computing devices, in bits
        per second (``B`` in the paper).
    latency_s:
        Fixed per-message cost.  The paper's formulas omit latency (it is
        negligible for the multi-megabyte gradients it studies); the
        default of ``0.0`` reproduces the paper exactly, while a non-zero
        value lets users model latency-bound regimes.
    """

    bandwidth_bps: float
    latency_s: float = 0.0

    def __post_init__(self) -> None:
        if self.bandwidth_bps <= 0:
            raise ModelError(f"bandwidth_bps must be positive, got {self.bandwidth_bps}")
        if self.latency_s < 0:
            raise ModelError(f"latency_s must be non-negative, got {self.latency_s}")

    def transfer_time(self, bits: float) -> float:
        """Time for one point-to-point transfer of ``bits``."""
        return self.latency_s + bits / self.bandwidth_bps

    def rounds(self, workers: int) -> float:
        """Number of sequential transfer rounds for ``workers`` nodes."""
        if workers < 1:
            raise ModelError(f"workers must be >= 1, got {workers}")
        return float(self.rounds_array(np.asarray([workers], dtype=float))[0])

    def rounds_array(self, workers: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`rounds` over a whole worker grid."""
        raise NotImplementedError

    def time(self, bits: float, workers: int) -> float:
        """Communication time of one collective over ``workers`` nodes."""
        _check_inputs(bits, workers)
        return float(self.times(bits, np.asarray([workers], dtype=float))[0])

    def times(self, bits: float, workers: np.ndarray) -> np.ndarray:
        """Batched communication time over a worker grid (one numpy call)."""
        grid = _check_grid(bits, workers)
        return self.rounds_array(grid) * self.transfer_time(bits)


@dataclass(frozen=True)
class NoCommunication(CommunicationModel):
    """Zero-cost communication (shared memory, as in the paper's BP model)."""

    bandwidth_bps: float = 1.0

    def rounds_array(self, workers: np.ndarray) -> np.ndarray:
        return np.zeros(np.asarray(workers).shape, dtype=float)

    def times(self, bits: float, workers: np.ndarray) -> np.ndarray:
        grid = _check_grid(bits, workers)
        return np.zeros(grid.shape, dtype=float)


@dataclass(frozen=True)
class LinearCommunication(CommunicationModel):
    """All workers talk to a single master, one after another.

    This is the shape assumed by the Sparks et al. model the paper
    criticises: total time grows linearly with the number of workers
    because the master's link serialises all ``workers - 1`` transfers.
    With ``include_self=True`` the master's own (local, but still
    serialised) contribution is counted too, giving exactly ``n`` rounds.
    """

    include_self: bool = False

    def rounds_array(self, workers: np.ndarray) -> np.ndarray:
        grid = np.asarray(workers, dtype=float)
        serialized = grid if self.include_self else grid - 1.0
        return np.where(grid == 1, 0.0, serialized)


@dataclass(frozen=True)
class TreeCommunication(CommunicationModel):
    """Binary-tree reduction/broadcast: ``ceil(log2 n)`` sequential rounds.

    The paper's generic gradient-descent model uses this shape
    (``tcm = 2 * (32 W / B) * log n`` counts a tree down and a tree up).
    ``fan_out`` generalises to k-ary trees.
    """

    fan_out: int = 2

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.fan_out < 2:
            raise ModelError(f"fan_out must be >= 2, got {self.fan_out}")

    def rounds_array(self, workers: np.ndarray) -> np.ndarray:
        grid = np.asarray(workers, dtype=float)
        # log(n)/log(f) reproduces math.log(n, f) double for double.
        depth = np.ceil(np.log(grid) / math.log(self.fan_out))
        return np.where(grid == 1, 0.0, depth)


@dataclass(frozen=True)
class TorrentBroadcast(CommunicationModel):
    """Spark's BitTorrent-like broadcast.

    Every node that already holds the payload re-serves it, so the number
    of sources doubles each round and the broadcast completes in
    ``log2 n`` rounds.  The paper models it as ``(64 W / B) * log n``.
    Whether the logarithm is discrete (``ceil``) or smooth is selectable;
    the paper's plotted curves are smooth, so that is the default.
    """

    discrete_rounds: bool = False

    def rounds_array(self, workers: np.ndarray) -> np.ndarray:
        grid = np.asarray(workers, dtype=float)
        raw = np.log2(grid)
        rounds = np.ceil(raw) if self.discrete_rounds else raw
        return np.where(grid == 1, 0.0, rounds)


@dataclass(frozen=True)
class TwoWaveAggregation(CommunicationModel):
    """Spark's two-wave ``treeAggregate`` used for gradient collection.

    Quoting the paper (Section V-A): "Aggregation is done in two waves.
    First wave is done for the square root number of the nodes and the
    second wave is done among the others."  Each wave costs
    ``ceil(sqrt(n))`` sequential transfers at the aggregators, hence
    ``tcm = 2 * (64 W / B) * ceil(sqrt(n))``.
    """

    waves: int = 2

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.waves < 1:
            raise ModelError(f"waves must be >= 1, got {self.waves}")

    def rounds_array(self, workers: np.ndarray) -> np.ndarray:
        # A single worker still hands its gradient to the driver once per
        # wave in Spark; the paper's formula keeps the ceil(sqrt(1)) = 1
        # term at n = 1, and we reproduce that.
        grid = np.asarray(workers, dtype=float)
        return self.waves * np.ceil(np.sqrt(grid))


@dataclass(frozen=True)
class RingAllReduce(CommunicationModel):
    """Bandwidth-optimal ring all-reduce (the MPI collective).

    Each node sends ``2 * (n - 1) / n`` of the payload in total across
    ``2 * (n - 1)`` latency-bound steps.  Included because the paper's
    related-work section points out that linear models mis-estimate
    all-reduce; this lets us quantify that in the ablation benches.
    """

    def rounds_array(self, workers: np.ndarray) -> np.ndarray:  # pragma: no cover - unused
        raise NotImplementedError("RingAllReduce overrides times() directly")

    def times(self, bits: float, workers: np.ndarray) -> np.ndarray:
        grid = _check_grid(bits, workers)
        steps = 2.0 * (grid - 1.0)
        payload_fraction = 2.0 * (grid - 1.0) / grid
        total = steps * self.latency_s + payload_fraction * bits / self.bandwidth_bps
        return np.where(grid == 1, 0.0, total)


@dataclass(frozen=True)
class ShuffleCommunication(CommunicationModel):
    """Hadoop/Spark shuffle: every node exchanges a slice with every other.

    ``bits`` is the total shuffled payload.  Each node holds ``bits / n``
    and must send the fraction ``(n - 1) / n`` of it; transfers to distinct
    peers are pairwise-parallel, so the port (not the fabric) is the
    bottleneck: ``time = (bits / n) * (n - 1) / n / B`` plus ``n - 1``
    message latencies.
    """

    def rounds_array(self, workers: np.ndarray) -> np.ndarray:  # pragma: no cover - unused
        raise NotImplementedError("ShuffleCommunication overrides times() directly")

    def times(self, bits: float, workers: np.ndarray) -> np.ndarray:
        grid = _check_grid(bits, workers)
        per_node = bits / grid
        outgoing = per_node * (grid - 1.0) / grid
        total = (grid - 1.0) * self.latency_s + outgoing / self.bandwidth_bps
        return np.where(grid == 1, 0.0, total)


@dataclass(frozen=True)
class ParameterServerCommunication(CommunicationModel):
    """Centralised parameter server: the server link serialises all workers.

    Each of the ``n`` workers pushes its gradient and pulls the new
    parameters, so the server moves ``2 * n`` payloads through one link.
    ``server_links`` models sharded parameter servers.
    """

    server_links: int = 1

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.server_links < 1:
            raise ModelError(f"server_links must be >= 1, got {self.server_links}")

    def rounds_array(self, workers: np.ndarray) -> np.ndarray:
        return 2.0 * np.asarray(workers, dtype=float) / self.server_links


@dataclass(frozen=True)
class CompositeCommunication:
    """Sum of several communication phases executed back to back.

    Spark's gradient-descent iteration is a torrent broadcast followed by
    a two-wave aggregation; this class expresses such pipelines while
    keeping each phase's payload independent.
    """

    phases: tuple[tuple[CommunicationModel, float], ...]

    def __post_init__(self) -> None:
        if not self.phases:
            raise ModelError("CompositeCommunication needs at least one phase")
        for model, scale in self.phases:
            if scale < 0:
                raise ModelError(f"phase payload scale must be non-negative, got {scale}")
            if not hasattr(model, "time"):
                raise ModelError(f"phase {model!r} is not a communication model")

    def time(self, bits: float, workers: int) -> float:
        """Total time; each phase carries ``bits * scale``."""
        _check_inputs(bits, workers)
        return float(self.times(bits, np.asarray([workers], dtype=float))[0])

    def times(self, bits: float, workers: np.ndarray) -> np.ndarray:
        """Batched total time over a worker grid."""
        grid = _check_grid(bits, workers)
        total = np.zeros(grid.shape, dtype=float)
        for model, scale in self.phases:
            total = total + model.times(bits * scale, grid)
        return total
