"""Strong/weak scaling studies and the practitioner's planning questions.

The paper's introduction motivates two concrete questions:

1. *Strong scaling* — "Given a workload, how many more machines are needed
   to decrease the run time by a certain amount?"
2. *Weak scaling* — "Given an increasing workload, how many more machines
   to add to keep the run time the same?"

:class:`StrongScalingStudy` and :class:`WeakScalingStudy` evaluate a model
under the two regimes; :func:`workers_for_time`, :func:`workers_for_speedup`
and :func:`workers_to_absorb_growth` answer the questions directly.
"""

from __future__ import annotations

import math
from collections.abc import Callable, Iterable
from dataclasses import dataclass

from repro.core.errors import ModelError
from repro.core.model import ScalabilityModel
from repro.core.speedup import SpeedupCurve

#: Builds a model for a given input size ``D`` (weak scaling re-sizes D).
ModelFactory = Callable[[float], ScalabilityModel]


@dataclass(frozen=True)
class StrongScalingStudy:
    """Fixed input size, varying worker count (Figure 2 of the paper)."""

    model: ScalabilityModel

    def curve(self, workers: Iterable[int]) -> SpeedupCurve:
        """Speedup relative to a single node on the given grid."""
        return self.model.curve(workers)

    def decomposition(self, workers: Iterable[int]) -> list[dict[str, float]]:
        """Per-component split per grid point, via the model's term tree.

        Each named term of ``model.decompose`` becomes a ``<name>_s``
        column; the whole grid is evaluated in one batched call.  Models
        without a term tree report a single ``total_s`` column.
        """
        grid = [int(n) for n in workers]
        components = self.model.decompose(grid)
        # The components sum to the total by construction, so one tree
        # walk yields both the breakdown and the time column.
        totals = sum(components.values())
        rows = []
        for index, n in enumerate(grid):
            row: dict[str, float] = {"workers": n, "time_s": float(totals[index])}
            for name, values in components.items():
                row[f"{name}_s"] = float(values[index])
            rows.append(row)
        return rows


@dataclass(frozen=True)
class WeakScalingStudy:
    """Input size grows with the cluster (Figure 3 of the paper).

    ``model_for_size`` builds the model for a given input size;
    ``size_for_workers`` grows the input with the worker count (the
    paper's deep-learning case uses ``S = 128 * n``: every node keeps a
    fixed mini-batch).  Per the paper, the metric is the time to process
    *one* unit of input, and speedup may be taken relative to a non-unit
    baseline (Figure 3 uses 50 workers).
    """

    model_for_size: ModelFactory
    size_for_workers: Callable[[int], float]

    def time_per_unit(self, workers: int) -> float:
        """Time to process one input unit with ``workers`` nodes."""
        if workers < 1:
            raise ModelError(f"workers must be >= 1, got {workers}")
        size = float(self.size_for_workers(workers))
        if size <= 0:
            raise ModelError(f"input size must be positive, got {size}")
        return self.model_for_size(size).time(workers) / size

    def curve(self, workers: Iterable[int], baseline_workers: int) -> SpeedupCurve:
        """Per-unit speedup relative to ``baseline_workers``."""
        return SpeedupCurve.from_model(
            self.time_per_unit, workers, baseline_workers, label="weak-scaling"
        )


def workers_for_time(
    model: ScalabilityModel, target_seconds: float, max_workers: int
) -> int | None:
    """Smallest worker count whose modelled time meets ``target_seconds``.

    Returns ``None`` when no count up to ``max_workers`` reaches the
    target — the honest answer when communication overhead caps speedup
    below what the practitioner hoped for.
    """
    if target_seconds <= 0:
        raise ModelError(f"target_seconds must be positive, got {target_seconds}")
    if max_workers < 1:
        raise ModelError(f"max_workers must be >= 1, got {max_workers}")
    for n in range(1, max_workers + 1):
        if model.time(n) <= target_seconds:
            return n
    return None


def workers_for_speedup(
    model: ScalabilityModel, target_speedup: float, max_workers: int
) -> int | None:
    """Smallest worker count achieving ``s(n) >= target_speedup``."""
    if target_speedup <= 0:
        raise ModelError(f"target_speedup must be positive, got {target_speedup}")
    baseline = model.time(1)
    return workers_for_time(model, baseline / target_speedup, max_workers)


#: Inverse golden ratio, the interval-shrink factor of golden-section search.
_INVPHI = (math.sqrt(5.0) - 1.0) / 2.0


def refine_optimal_workers(
    model: ScalabilityModel,
    lower: int,
    upper: int,
    tolerance: float = 1e-3,
) -> float:
    """The continuous minimiser of ``t(n)`` on ``[lower, upper]``.

    A grid argmax (:attr:`~repro.core.speedup.SpeedupCurve.optimal_workers`)
    is only as precise as the grid; the paper's closed forms are smooth in
    ``n``, so between grid points there is a real-valued optimum.  This is
    a golden-section search over :meth:`ScalabilityModel.continuous_times`
    — exact (to ``tolerance``) for the unimodal time curves the paper's
    models produce (``c/n`` plus non-decreasing communication); on flat
    plateaus (``ceil`` terms) it converges to a point inside the plateau.

    Returns the continuous worker count; round and clamp to the grid for
    a provisioning decision.  Raises :class:`~repro.core.errors.ModelError`
    for models without a cost tree (tabulated or Monte-Carlo-backed
    models have no continuation to search).
    """
    if lower < 1:
        raise ModelError(f"lower must be >= 1, got {lower}")
    if upper < lower:
        raise ModelError(f"upper must be >= lower, got {lower}..{upper}")
    if tolerance <= 0:
        raise ModelError(f"tolerance must be positive, got {tolerance}")
    a, b = float(lower), float(upper)
    if b - a <= tolerance:
        return (a + b) / 2.0

    def time_at(x: float) -> float:
        return float(model.continuous_times([x])[0])

    c = b - (b - a) * _INVPHI
    d = a + (b - a) * _INVPHI
    time_c, time_d = time_at(c), time_at(d)
    while b - a > tolerance:
        if time_c < time_d:
            b, d, time_d = d, c, time_c
            c = b - (b - a) * _INVPHI
            time_c = time_at(c)
        else:
            a, c, time_c = c, d, time_d
            d = a + (b - a) * _INVPHI
            time_d = time_at(d)
    return (a + b) / 2.0


def workers_to_absorb_growth(
    model_for_size: ModelFactory,
    current_size: float,
    current_workers: int,
    growth_factor: float,
    max_workers: int,
    tolerance: float = 0.05,
) -> int | None:
    """Weak-scaling planner: keep run time flat as the workload grows.

    Finds the smallest worker count at which the model for the *grown*
    input (``current_size * growth_factor``) matches the current run time
    within ``tolerance`` (relative).  Returns ``None`` if no count up to
    ``max_workers`` suffices.
    """
    if current_size <= 0:
        raise ModelError(f"current_size must be positive, got {current_size}")
    if current_workers < 1:
        raise ModelError(f"current_workers must be >= 1, got {current_workers}")
    if growth_factor <= 0:
        raise ModelError(f"growth_factor must be positive, got {growth_factor}")
    if tolerance < 0:
        raise ModelError(f"tolerance must be non-negative, got {tolerance}")
    current_time = model_for_size(current_size).time(current_workers)
    grown = model_for_size(current_size * growth_factor)
    for n in range(current_workers, max_workers + 1):
        if grown.time(n) <= current_time * (1.0 + tolerance):
            return n
    return None
