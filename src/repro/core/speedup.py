"""Speedup curves — the paper's central measuring instrument.

Section III: ``s(n) = t(1) / t(n)``; the algorithm is *scalable* if some
``k`` gives ``s(k) > 1``; the optimal number of nodes is
``N = argmax s(n)``.  Speedup is preferred over raw time because it
cancels proportional systematic errors (e.g. the exact fraction of peak
FLOPS reached).
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Sequence
from dataclasses import dataclass

import numpy as np

from repro.core.errors import ModelError

TimeFunction = Callable[[int], float]

#: Either a scalar ``workers -> seconds`` callable or any object with a
#: batched ``times(grid) -> np.ndarray`` method (a ScalabilityModel or a
#: CostTerm).  Batched sources are evaluated in one vectorized call.
TimeSource = TimeFunction


def _evaluate_times(source: TimeSource, workers: Sequence[int]) -> list[float]:
    """Evaluate a time source on a grid — one numpy call when batched."""
    if hasattr(source, "times"):
        return [float(t) for t in source.times(np.asarray(workers, dtype=float))]
    return [float(source(n)) for n in workers]


@dataclass(frozen=True)
class SpeedupCurve:
    """A speedup curve evaluated on a grid of worker counts.

    ``times[i]`` is the modelled (or measured) execution time with
    ``workers[i]`` nodes.  ``baseline_time`` is ``t(1)``; when the grid
    contains ``workers == 1`` it defaults to that entry.  ``baseline_workers``
    records the reference point (1 for ordinary speedup; Figure 3 of the
    paper uses 50).
    """

    workers: tuple[int, ...]
    times: tuple[float, ...]
    baseline_time: float
    baseline_workers: int = 1
    label: str = ""

    def __post_init__(self) -> None:
        if len(self.workers) != len(self.times):
            raise ModelError("workers and times must have the same length")
        if not self.workers:
            raise ModelError("a speedup curve needs at least one point")
        if any(n < 1 for n in self.workers):
            raise ModelError("worker counts must be >= 1")
        if len(set(self.workers)) != len(self.workers):
            raise ModelError("worker counts must be unique")
        if any(t <= 0 for t in self.times):
            raise ModelError("times must be positive")
        if self.baseline_time <= 0:
            raise ModelError("baseline_time must be positive")
        if self.baseline_workers < 1:
            raise ModelError("baseline_workers must be >= 1")

    @classmethod
    def from_times(
        cls,
        workers: Sequence[int],
        times: Sequence[float],
        baseline_workers: int = 1,
        label: str = "",
    ) -> "SpeedupCurve":
        """Build a curve, taking ``t(baseline_workers)`` from the grid itself."""
        workers_t = tuple(int(n) for n in workers)
        times_t = tuple(float(t) for t in times)
        if baseline_workers not in workers_t:
            raise ModelError(
                f"baseline worker count {baseline_workers} is not on the grid {workers_t}"
            )
        baseline_time = times_t[workers_t.index(baseline_workers)]
        return cls(workers_t, times_t, baseline_time, baseline_workers, label)

    @classmethod
    def from_model(
        cls,
        model: TimeSource,
        workers: Iterable[int],
        baseline_workers: int = 1,
        label: str = "",
    ) -> "SpeedupCurve":
        """Evaluate a time source on a grid and on the baseline point.

        ``model`` may be a scalar ``workers -> seconds`` callable (the
        historical API) or anything exposing batched ``times`` (a
        :class:`~repro.core.model.ScalabilityModel`), in which case the
        whole grid is one vectorized evaluation.  The baseline time is
        taken from the grid when the baseline lies on it — never
        recomputed.
        """
        workers_t = tuple(int(n) for n in workers)
        times_t = tuple(_evaluate_times(model, workers_t))
        if baseline_workers in workers_t:
            baseline_time = times_t[workers_t.index(baseline_workers)]
        else:
            baseline_time = _evaluate_times(model, (baseline_workers,))[0]
        return cls(workers_t, times_t, baseline_time, baseline_workers, label)

    @property
    def speedups(self) -> tuple[float, ...]:
        """``s(n) = t(baseline) / t(n)`` for every grid point."""
        return tuple(self.baseline_time / t for t in self.times)

    @property
    def efficiencies(self) -> tuple[float, ...]:
        """Parallel efficiency ``s(n) * baseline_workers / n``."""
        return tuple(
            s * self.baseline_workers / n for s, n in zip(self.speedups, self.workers)
        )

    def speedup_at(self, workers: int) -> float:
        """Speedup at one grid point; raises if the point is absent."""
        if workers not in self.workers:
            raise ModelError(f"worker count {workers} is not on the grid")
        return self.speedups[self.workers.index(workers)]

    @property
    def optimal_workers(self) -> int:
        """``argmax s(n)`` over the grid (the paper's optimal node count).

        Ties are broken toward the **smallest** worker count reaching the
        peak: when several counts achieve exactly the same speedup (flat
        plateaus are common — Spark's ``ceil(sqrt(n))`` aggregation makes
        whole ranges of ``n`` equivalent), recommending more machines for
        the same speedup would be indefensible in a provisioning decision.
        Tie detection uses exact float equality; nearly-equal points are
        distinct points.
        """
        speedups = self.speedups
        peak = self.peak_speedup
        return min(n for n, s in zip(self.workers, speedups) if s == peak)

    def knee(self, fraction: float = 0.95) -> int:
        """Smallest worker count reaching ``fraction`` of the peak speedup.

        The diminishing-returns point: past the knee, the remaining
        ``(1 - fraction)`` of the peak costs disproportionally many
        machines.  The capacity planner reports it alongside the argmax
        because the knee, not the peak, is usually the economic optimum.
        ``fraction`` must be in ``(0, 1]``; ``knee(1.0)`` equals
        :attr:`optimal_workers`.
        """
        if not 0.0 < fraction <= 1.0:
            raise ModelError(f"knee fraction must be in (0, 1], got {fraction}")
        speedups = self.speedups
        threshold = fraction * self.peak_speedup
        return min(n for n, s in zip(self.workers, speedups) if s >= threshold)

    @property
    def peak_speedup(self) -> float:
        """``max s(n)`` over the grid."""
        return max(self.speedups)

    @property
    def is_scalable(self) -> bool:
        """True if some grid point beats the baseline (``s(k) > 1``)."""
        return any(s > 1.0 + 1e-12 for s in self.speedups)

    def rows(self) -> list[dict[str, float]]:
        """Tabular form for reports: one dict per grid point."""
        return [
            {
                "workers": n,
                "time_s": t,
                "speedup": s,
                "efficiency": e,
            }
            for n, t, s, e in zip(self.workers, self.times, self.speedups, self.efficiencies)
        ]


def speedup_grid(model: TimeSource, max_workers: int, baseline_workers: int = 1) -> SpeedupCurve:
    """Evaluate a time source on ``1..max_workers`` and wrap as a curve."""
    if max_workers < 1:
        raise ModelError(f"max_workers must be >= 1, got {max_workers}")
    return SpeedupCurve.from_model(model, range(1, max_workers + 1), baseline_workers)


def optimal_workers(model: TimeSource, max_workers: int) -> int:
    """``argmax_{1<=n<=max_workers} s(n)`` — the paper's ``N``."""
    return speedup_grid(model, max_workers).optimal_workers


def scalability_limit(model: TimeSource, max_workers: int, tolerance: float = 0.0) -> int:
    """Largest ``n`` whose marginal speedup is still positive.

    Returns the last worker count at which adding a node improved the time
    by more than ``tolerance`` (relative).  Useful for answering "when do
    extra machines stop helping at all", which can differ from the argmax
    on jagged curves like Spark's ``ceil(sqrt(n))`` aggregation.
    """
    if max_workers < 1:
        raise ModelError(f"max_workers must be >= 1, got {max_workers}")
    times = _evaluate_times(model, range(1, max_workers + 1))
    best = 1
    previous = times[0]
    for n, current in zip(range(2, max_workers + 1), times[1:]):
        if current < previous * (1.0 - tolerance):
            best = n
        previous = current
    return best


def crossover_workers(
    model_a: TimeSource, model_b: TimeSource, max_workers: int
) -> int | None:
    """Smallest ``n`` at which ``model_b`` becomes faster than ``model_a``.

    Used by the benches to locate who-wins-where crossovers between
    communication topologies.  Returns ``None`` if B never wins on the grid.

    Deliberately evaluates point by point with an early exit: a
    table-backed model measured only up to the crossover must still
    report it, and expensive models stop paying once B wins.
    """
    if max_workers < 1:
        raise ModelError(f"max_workers must be >= 1, got {max_workers}")
    fn_a = model_a.time if hasattr(model_a, "time") else model_a
    fn_b = model_b.time if hasattr(model_b, "time") else model_b
    for n in range(1, max_workers + 1):
        if fn_b(n) < fn_a(n):
            return n
    return None
