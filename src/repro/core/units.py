"""Units and quantity helpers used across the library.

The paper expresses model inputs in a small set of units: FLOPS for compute
throughput, bits per second for network bandwidth, bits for message sizes,
and seconds for time.  Everything in this library is stored in those base
units (floats); this module provides the named constants and parsing helpers
that keep call sites readable, e.g. ``2 * GIGA`` instead of ``2e9``.
"""

from __future__ import annotations

import re

from repro.core.errors import UnitError

#: SI multipliers.
KILO = 1e3
MEGA = 1e6
GIGA = 1e9
TERA = 1e12
PETA = 1e15

#: Binary multipliers (used for memory sizes).
KIBI = 2**10
MEBI = 2**20
GIBI = 2**30
TEBI = 2**40

BITS_PER_BYTE = 8

#: Bits used to encode one model parameter at a given precision.
BITS_SINGLE_PRECISION = 32
BITS_DOUBLE_PRECISION = 64

_SI_PREFIXES = {
    "": 1.0,
    "k": KILO,
    "K": KILO,
    "M": MEGA,
    "G": GIGA,
    "T": TERA,
    "P": PETA,
    "Ki": KIBI,
    "Mi": MEBI,
    "Gi": GIBI,
    "Ti": TEBI,
}

_UNIT_SCALES = {
    # Compute throughput, in FLOPS.
    "flops": 1.0,
    "flop/s": 1.0,
    # Bandwidth, in bits per second.
    "bit/s": 1.0,
    "bps": 1.0,
    "b/s": 1.0,
    "byte/s": float(BITS_PER_BYTE),
    "B/s": float(BITS_PER_BYTE),
    # Sizes, in bits.
    "bit": 1.0,
    "b": 1.0,
    "byte": float(BITS_PER_BYTE),
    "B": float(BITS_PER_BYTE),
    # Time, in seconds.
    "s": 1.0,
    "sec": 1.0,
    "ms": 1e-3,
    "us": 1e-6,
    "ns": 1e-9,
    # Frequency, in Hz.
    "Hz": 1.0,
}

_QUANTITY_RE = re.compile(
    r"^\s*(?P<number>[-+]?\d+(?:\.\d+)?(?:[eE][-+]?\d+)?)\s*"
    r"(?P<prefix>Ki|Mi|Gi|Ti|[kKMGTP]?)(?P<unit>[A-Za-z/]+)\s*$"
)


def parse_quantity(text: str) -> float:
    """Parse a human-readable quantity into base units.

    Base units are: FLOPS, bits, bits per second, seconds and hertz.

    >>> parse_quantity("211.2 GFLOPS")
    211200000000.0
    >>> parse_quantity("1 Gbit/s")
    1000000000.0
    >>> parse_quantity("16 GiB")
    137438953472.0

    Raises :class:`~repro.core.errors.UnitError` for unknown units.
    """
    match = _QUANTITY_RE.match(text)
    if match is None:
        raise UnitError(f"cannot parse quantity: {text!r}")
    number = float(match.group("number"))
    prefix = match.group("prefix")
    unit = match.group("unit")
    if unit not in _UNIT_SCALES:
        # Units are matched case-sensitively first; fall back to a
        # case-insensitive match for spellings such as "GFLOPS".
        lowered = unit.lower()
        if lowered in _UNIT_SCALES:
            unit = lowered
        else:
            raise UnitError(f"unknown unit {unit!r} in {text!r}")
    return number * _SI_PREFIXES[prefix] * _UNIT_SCALES[unit]


def parameter_bits(parameter_count: float, bits_per_parameter: int = BITS_SINGLE_PRECISION) -> float:
    """Return the message size, in bits, of a parameter vector.

    This is the ``32 * W`` (or ``64 * W`` for Spark's double precision)
    factor that appears in every communication formula of the paper.
    """
    if parameter_count < 0:
        raise UnitError(f"parameter_count must be non-negative, got {parameter_count}")
    if bits_per_parameter <= 0:
        raise UnitError(f"bits_per_parameter must be positive, got {bits_per_parameter}")
    return float(parameter_count) * float(bits_per_parameter)


def transfer_seconds(bits: float, bandwidth_bps: float, latency_s: float = 0.0) -> float:
    """Time to push ``bits`` through a link of ``bandwidth_bps``.

    ``latency_s`` is added once; it models the per-message fixed cost.
    """
    if bits < 0:
        raise UnitError(f"bits must be non-negative, got {bits}")
    if bandwidth_bps <= 0:
        raise UnitError(f"bandwidth_bps must be positive, got {bandwidth_bps}")
    if latency_s < 0:
        raise UnitError(f"latency_s must be non-negative, got {latency_s}")
    return latency_s + bits / bandwidth_bps


def format_seconds(seconds: float) -> str:
    """Render a duration with a sensible unit for reports (e.g. ``"12.3 ms"``)."""
    if seconds < 0:
        return "-" + format_seconds(-seconds)
    if seconds == 0:
        return "0 s"
    if seconds < 1e-6:
        return f"{seconds * 1e9:.3g} ns"
    if seconds < 1e-3:
        return f"{seconds * 1e6:.3g} us"
    if seconds < 1.0:
        return f"{seconds * 1e3:.3g} ms"
    if seconds < 120.0:
        return f"{seconds:.3g} s"
    if seconds < 7200.0:
        return f"{seconds / 60.0:.3g} min"
    return f"{seconds / 3600.0:.3g} h"


def format_count(count: float) -> str:
    """Render a large count the way the paper does (e.g. ``"25.0e6"``)."""
    if count == 0:
        return "0"
    magnitude = 0
    scaled = float(count)
    while abs(scaled) >= 1000.0:
        scaled /= 1000.0
        magnitude += 3
    if magnitude == 0:
        return f"{scaled:g}"
    return f"{scaled:.3g}e{magnitude}"
