"""Exception hierarchy for the library.

All exceptions raised deliberately by this package derive from
:class:`ReproError`, so callers can catch one type at the boundary.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class UnitError(ReproError, ValueError):
    """A quantity, unit or physical parameter is malformed or out of range."""


class ModelError(ReproError, ValueError):
    """An analytical model was constructed or evaluated with invalid inputs."""


class CalibrationError(ReproError, RuntimeError):
    """Fitting a model to measured data failed or was ill-posed."""


class SimulationError(ReproError, RuntimeError):
    """The discrete-event simulator reached an inconsistent state."""


class GraphError(ReproError, ValueError):
    """A graph is malformed or an operation received an incompatible graph."""


class PartitionError(ReproError, ValueError):
    """A partitioning request or result is invalid."""


class ArchitectureError(ReproError, ValueError):
    """A neural-network architecture specification is inconsistent."""


class TrainingError(ReproError, RuntimeError):
    """Training of a neural network failed (e.g. diverged)."""


class InferenceError(ReproError, RuntimeError):
    """Probabilistic inference failed (e.g. BP called on an empty model)."""


class ExperimentError(ReproError, RuntimeError):
    """An experiment driver could not produce its result."""


class ScenarioError(ReproError, ValueError):
    """A declarative scenario spec is malformed or cannot be compiled."""


class PlanError(ReproError, ValueError):
    """A capacity-plan spec is malformed or cannot be optimised."""
