"""Scalability-model base classes.

A *scalability model* maps a worker count to an execution time; everything
else (speedup curves, optimal node counts, planning) derives from it.  The
paper's per-algorithm models in :mod:`repro.models` subclass
:class:`ScalabilityModel`; :class:`BSPModel` covers the common
``t = tcp + tcm`` case directly.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Callable, Iterable
from dataclasses import dataclass

from repro.core.complexity import CostTerm
from repro.core.errors import ModelError
from repro.core.speedup import SpeedupCurve, speedup_grid


class ScalabilityModel(ABC):
    """Maps a worker count ``n`` to execution time ``t(n)`` in seconds."""

    @abstractmethod
    def time(self, workers: int) -> float:
        """Modelled execution time on ``workers`` homogeneous nodes."""

    def speedup(self, workers: int, baseline_workers: int = 1) -> float:
        """``s(n) = t(baseline) / t(n)``."""
        return self.time(baseline_workers) / self.time(workers)

    def curve(self, workers: Iterable[int], baseline_workers: int = 1) -> SpeedupCurve:
        """Evaluate the model on an explicit worker grid."""
        return SpeedupCurve.from_model(
            self.time, workers, baseline_workers, label=type(self).__name__
        )

    def grid(self, max_workers: int) -> SpeedupCurve:
        """Evaluate the model on ``1..max_workers``."""
        return speedup_grid(self.time, max_workers)

    def optimal_workers(self, max_workers: int) -> int:
        """``argmax s(n)`` over ``1..max_workers`` — the paper's ``N``."""
        return self.grid(max_workers).optimal_workers


@dataclass(frozen=True)
class BSPModel(ScalabilityModel):
    """A bulk-synchronous-parallel algorithm: supersteps of ``tcp + tcm``.

    ``computation`` and ``communication`` are cost terms; ``iterations``
    multiplies the superstep (the paper ignores one-off initialisation
    because iteration counts are large, and so do we).
    """

    computation: CostTerm
    communication: CostTerm
    iterations: int = 1

    def __post_init__(self) -> None:
        if self.iterations < 1:
            raise ModelError(f"iterations must be >= 1, got {self.iterations}")

    def superstep_time(self, workers: int) -> float:
        """Time of a single superstep at ``workers`` nodes."""
        return self.computation.time(workers) + self.communication.time(workers)

    def time(self, workers: int) -> float:
        return self.iterations * self.superstep_time(workers)

    def computation_time(self, workers: int) -> float:
        """Total computation component (for decomposition plots)."""
        return self.iterations * self.computation.time(workers)

    def communication_time(self, workers: int) -> float:
        """Total communication component (for decomposition plots)."""
        return self.iterations * self.communication.time(workers)


@dataclass(frozen=True)
class CallableModel(ScalabilityModel):
    """Wrap an arbitrary ``workers -> seconds`` function as a model."""

    fn: Callable[[int], float]
    label: str = "callable"

    def time(self, workers: int) -> float:
        if workers < 1:
            raise ModelError(f"workers must be >= 1, got {workers}")
        value = float(self.fn(workers))
        if value <= 0:
            raise ModelError(f"model {self.label!r} returned non-positive time {value}")
        return value


@dataclass(frozen=True)
class MeasuredModel(ScalabilityModel):
    """A 'model' backed by measurements on a fixed grid.

    Lets measured data flow through the same analysis APIs (speedup
    curves, MAPE comparisons) as analytical models.  Queries off the grid
    raise — we never silently interpolate measurements.
    """

    measurements: tuple[tuple[int, float], ...]

    def __post_init__(self) -> None:
        if not self.measurements:
            raise ModelError("MeasuredModel needs at least one measurement")
        seen = set()
        for workers, seconds in self.measurements:
            if workers < 1:
                raise ModelError(f"worker counts must be >= 1, got {workers}")
            if seconds <= 0:
                raise ModelError(f"measured times must be positive, got {seconds}")
            if workers in seen:
                raise ModelError(f"duplicate measurement for {workers} workers")
            seen.add(workers)

    @classmethod
    def from_pairs(cls, pairs: Iterable[tuple[int, float]]) -> "MeasuredModel":
        """Build from any iterable of ``(workers, seconds)`` pairs."""
        return cls(tuple((int(n), float(t)) for n, t in pairs))

    def time(self, workers: int) -> float:
        for n, seconds in self.measurements:
            if n == workers:
                return seconds
        raise ModelError(f"no measurement recorded for {workers} workers")

    @property
    def workers(self) -> tuple[int, ...]:
        """The measured grid, in recording order."""
        return tuple(n for n, _ in self.measurements)
