"""Scalability-model base classes.

A *scalability model* maps worker counts to execution times; everything
else (speedup curves, optimal node counts, planning) derives from it.
The primary evaluation API is batched — ``times(workers)`` answers a
whole grid in one vectorized numpy call — and models are *term trees*:
a subclass overrides :meth:`ScalabilityModel.cost` to return a
:class:`~repro.core.complexity.CostTerm`, and the base class derives
``times``, scalar ``time``, ``decompose`` and the speedup helpers from
it.  The paper's per-algorithm models in :mod:`repro.models` are all
expressed this way; :class:`BSPModel` covers the common ``t = tcp + tcm``
case directly.

Legacy subclasses that only override scalar ``time`` keep working: the
batched entry point falls back to a point-by-point loop for them.
"""

from __future__ import annotations

import warnings
from abc import ABC
from collections.abc import Callable, Iterable
from dataclasses import dataclass

import numpy as np

from repro.core.complexity import (
    CostTerm,
    NamedCost,
    ScaledCost,
    SumCost,
    TabulatedCost,
    as_worker_array,
    merge_components,
)
from repro.core.errors import ModelError
from repro.core.speedup import SpeedupCurve, speedup_grid


class ScalabilityModel(ABC):
    """Maps worker counts ``n`` to execution times ``t(n)`` in seconds.

    Subclasses override **either** :meth:`cost` (preferred — a composable
    term tree that vectorizes and decomposes for free) **or** scalar
    :meth:`time` (escape hatch for models with no closed-form term
    structure).
    """

    def cost(self) -> CostTerm:
        """The model's cost-term tree (see :mod:`repro.core.complexity`).

        Overriding this single method gives a model batched evaluation,
        generic decomposition and every speedup helper.
        """
        raise NotImplementedError(f"{type(self).__name__} does not define a cost tree")

    def _has_cost_tree(self) -> bool:
        return type(self).cost is not ScalabilityModel.cost

    def _cost_tree(self) -> CostTerm:
        """The model's cost tree, built once per (frozen) instance."""
        tree = self.__dict__.get("_cost_tree_cache")
        if tree is None:
            tree = self.cost()
            object.__setattr__(self, "_cost_tree_cache", tree)
        return tree

    def times(self, workers: Iterable[int] | np.ndarray) -> np.ndarray:
        """Modelled execution time at every grid point — one batched call."""
        grid = as_worker_array(workers)
        if self._has_cost_tree():
            return self._cost_tree()._times(grid)
        if type(self).time is ScalabilityModel.time:
            raise TypeError(
                f"{type(self).__name__} must override either cost() or time()"
            )
        return np.array([self.time(int(n)) for n in grid], dtype=float)

    def time(self, workers: int) -> float:
        """Modelled execution time on ``workers`` homogeneous nodes.

        A thin scalar wrapper over :meth:`times`, so scalar and batched
        evaluation cannot drift apart.
        """
        if workers < 1:
            raise ModelError(f"workers must be >= 1, got {workers}")
        return float(self.times(np.asarray([workers], dtype=float))[0])

    def continuous_times(self, workers: Iterable[float] | np.ndarray) -> np.ndarray:
        """Evaluate the cost tree at *real-valued* worker counts ``>= 1``.

        The paper's closed forms are smooth functions of ``n`` (``c/n``,
        ``log2 n``, …), so between grid points they define the analytic
        continuation the planner's golden-section refinement searches
        (:func:`repro.core.scaling.refine_optimal_workers`).  Fractional
        counts are deliberately rejected by :meth:`times` — a grid
        evaluation must never silently accept what the scalar API refuses
        — so continuation is a separate, explicitly-named entry point.
        Only available for term-tree models; tabulated terms (measured or
        Monte-Carlo-backed grids) raise off their recorded counts.
        """
        array = np.asarray(workers, dtype=float)
        if array.ndim == 0:
            array = array.reshape(1)
        if array.ndim != 1 or array.size == 0:
            raise ModelError("continuous worker grids must be non-empty and 1-D")
        if not np.all(np.isfinite(array)) or np.any(array < 1):
            raise ModelError("continuous worker counts must be finite and >= 1")
        if not self._has_cost_tree():
            raise ModelError(
                f"{type(self).__name__} has no cost tree; continuous_times()"
                " is only available for term-tree models"
            )
        return self._cost_tree()._times(array)

    def decompose(self, workers: Iterable[int] | np.ndarray) -> dict[str, np.ndarray]:
        """Labeled component arrays summing to ``times(workers)``.

        Models with a cost tree decompose into their named terms (e.g.
        ``{"computation": ..., "communication": ...}``); models without
        one report a single ``"total"`` entry.
        """
        grid = as_worker_array(workers)
        if self._has_cost_tree():
            return merge_components(self._cost_tree()._components(grid))
        return {"total": self.times(grid)}

    def _kind_time(self, kind: str, workers: int, alias: str) -> float:
        """Scalar total of the components classified as ``kind``."""
        if workers < 1:
            raise ModelError(f"workers must be >= 1, got {workers}")
        if not self._has_cost_tree():
            raise ModelError(
                f"{type(self).__name__} has no cost tree; {alias}() is only"
                " available for term-tree models — use decompose() instead"
            )
        grid = np.asarray([workers], dtype=float)
        components = self._cost_tree()._components(grid)
        matching = [c for c in components if c.kind == kind]
        if not matching:
            raise ModelError(
                f"{type(self).__name__} has no {kind} component;"
                f" components: {[c.name for c in components]}"
            )
        return float(sum(float(c.values[0]) for c in matching))

    def computation_time(self, workers: int) -> float:
        """Deprecated: total of the computation-kind terms.

        Use ``decompose(workers)`` instead; this alias survives for the
        decomposition plots written against the old per-model methods.
        """
        warnings.warn(
            "computation_time() is deprecated; use decompose()",
            DeprecationWarning,
            stacklevel=2,
        )
        return self._kind_time("computation", workers, "computation_time")

    def communication_time(self, workers: int) -> float:
        """Deprecated: total of the communication-kind terms.

        Use ``decompose(workers)`` instead.
        """
        warnings.warn(
            "communication_time() is deprecated; use decompose()",
            DeprecationWarning,
            stacklevel=2,
        )
        return self._kind_time("communication", workers, "communication_time")

    def baseline_time(self, baseline_workers: int = 1) -> float:
        """``t(baseline)``, cached per instance.

        ``speedup`` is called in tight loops with the same baseline; the
        baseline evaluation is pure (models are frozen), so it is cached
        on first use instead of recomputed per call.
        """
        cache = self.__dict__.get("_baseline_cache")
        if cache is None:
            cache = {}
            # Works on frozen dataclasses too: the cache is not a field.
            object.__setattr__(self, "_baseline_cache", cache)
        if baseline_workers not in cache:
            cache[baseline_workers] = self.time(baseline_workers)
        return cache[baseline_workers]

    def speedup(self, workers: int, baseline_workers: int = 1) -> float:
        """``s(n) = t(baseline) / t(n)``."""
        denominator = self.time(workers)
        if denominator <= 0:
            raise ModelError(
                f"cannot compute speedup: t({workers}) = {denominator} is not positive"
            )
        return self.baseline_time(baseline_workers) / denominator

    def curve(self, workers: Iterable[int], baseline_workers: int = 1) -> SpeedupCurve:
        """Evaluate the model on an explicit worker grid (batched)."""
        return SpeedupCurve.from_model(
            self, workers, baseline_workers, label=type(self).__name__
        )

    def grid(self, max_workers: int) -> SpeedupCurve:
        """Evaluate the model on ``1..max_workers``."""
        return speedup_grid(self, max_workers)

    def optimal_workers(self, max_workers: int) -> int:
        """``argmax s(n)`` over ``1..max_workers`` — the paper's ``N``."""
        return self.grid(max_workers).optimal_workers


@dataclass(frozen=True)
class BSPModel(ScalabilityModel):
    """A bulk-synchronous-parallel algorithm: supersteps of ``tcp + tcm``.

    ``computation`` and ``communication`` are cost terms; ``iterations``
    multiplies the superstep (the paper ignores one-off initialisation
    because iteration counts are large, and so do we).
    """

    computation: CostTerm
    communication: CostTerm
    iterations: int = 1

    def __post_init__(self) -> None:
        if self.iterations < 1:
            raise ModelError(f"iterations must be >= 1, got {self.iterations}")

    def cost(self) -> CostTerm:
        step = SumCost(
            (
                NamedCost("computation", self.computation, kind="computation"),
                NamedCost("communication", self.communication, kind="communication"),
            )
        )
        return ScaledCost(step, float(self.iterations))

    def superstep_time(self, workers: int) -> float:
        """Time of a single superstep at ``workers`` nodes."""
        return self.computation.time(workers) + self.communication.time(workers)


@dataclass(frozen=True)
class CallableModel(ScalabilityModel):
    """Wrap an arbitrary ``workers -> seconds`` function as a model."""

    fn: Callable[[int], float]
    label: str = "callable"

    def time(self, workers: int) -> float:
        if workers < 1:
            raise ModelError(f"workers must be >= 1, got {workers}")
        value = float(self.fn(workers))
        if value <= 0:
            raise ModelError(f"model {self.label!r} returned non-positive time {value}")
        return value


@dataclass(frozen=True)
class MeasuredModel(ScalabilityModel):
    """A 'model' backed by measurements on a fixed grid.

    Lets measured data flow through the same analysis APIs (speedup
    curves, MAPE comparisons) as analytical models.  Queries off the grid
    raise — we never silently interpolate measurements.
    """

    measurements: tuple[tuple[int, float], ...]

    def __post_init__(self) -> None:
        if not self.measurements:
            raise ModelError("MeasuredModel needs at least one measurement")
        seen = set()
        for workers, seconds in self.measurements:
            if workers < 1:
                raise ModelError(f"worker counts must be >= 1, got {workers}")
            if seconds <= 0:
                raise ModelError(f"measured times must be positive, got {seconds}")
            if workers in seen:
                raise ModelError(f"duplicate measurement for {workers} workers")
            seen.add(workers)

    @classmethod
    def from_pairs(cls, pairs: Iterable[tuple[int, float]]) -> "MeasuredModel":
        """Build from any iterable of ``(workers, seconds)`` pairs."""
        return cls(tuple((int(n), float(t)) for n, t in pairs))

    def cost(self) -> CostTerm:
        return NamedCost(
            "measured",
            TabulatedCost(
                tuple(sorted(self.measurements)), description="measurement"
            ),
        )

    @property
    def workers(self) -> tuple[int, ...]:
        """The measured grid, in recording order."""
        return tuple(n for n, _ in self.measurements)
