"""Calibration: fit model parameters from measured runs.

The paper deliberately avoids profiling ("does not require any test runs"),
but its conclusion names *incorporating a feedback loop from experiments*
as future work — they found the BP model benefits from it.  This module is
that feedback loop: given measured ``(workers, seconds)`` pairs, fit free
parameters of an analytical model by least squares, and compare candidate
models by MAPE.
"""

from __future__ import annotations

import math
from collections.abc import Callable, Sequence
from dataclasses import dataclass

import numpy as np
import scipy.optimize

from repro.core.errors import CalibrationError
from repro.core.metrics import mape, r_squared, rmse
from repro.core.model import CallableModel, ScalabilityModel

#: A parametric time family: ``family(workers, params) -> seconds``.
TimeFamily = Callable[[np.ndarray, np.ndarray], np.ndarray]

#: Named feature sets for :func:`fit_linear_features`, used by the
#: calibrated evaluation backend and the ``scenario calibrate`` CLI.
#: Each is a tuple of scalar ``n -> value`` features; the fit finds
#: non-negative coefficients for ``t(n) = sum_j theta_j * f_j(n)``.
FEATURE_LIBRARIES: dict[str, tuple[Callable[[float], float], ...]] = {
    # Venkataraman et al.'s Ernest features: fixed cost, perfectly
    # parallel work, tree communication, serialised communication.
    "ernest": (
        lambda n: 1.0,
        lambda n: 1.0 / n,
        lambda n: math.log2(n) if n > 1 else 0.0,
        lambda n: float(n),
    ),
    # The paper's generic gradient-descent shape (Section IV-A).
    "gd-log": (
        lambda n: 1.0 / n,
        lambda n: math.log2(n) if n > 1 else 0.0,
    ),
    # The Figure 2 Spark shape: torrent log plus two-wave sqrt waves.
    "spark": (
        lambda n: 1.0 / n,
        lambda n: math.log2(n) if n > 1 else 0.0,
        lambda n: math.ceil(math.sqrt(n)),
    ),
    # Amdahl's law: serial fraction plus parallel remainder.
    "amdahl": (
        lambda n: 1.0,
        lambda n: 1.0 / n,
    ),
}


def feature_library(name: str) -> tuple[Callable[[float], float], ...]:
    """The named feature set, with the valid names listed on a miss."""
    try:
        return FEATURE_LIBRARIES[name]
    except KeyError:
        known = ", ".join(sorted(FEATURE_LIBRARIES))
        raise CalibrationError(f"unknown feature library {name!r}; known: {known}")


@dataclass(frozen=True)
class CalibrationResult:
    """Outcome of fitting a parametric family to measurements."""

    params: tuple[float, ...]
    mape_pct: float
    rmse_s: float
    r2: float
    model: ScalabilityModel

    def __str__(self) -> str:
        params = ", ".join(f"{p:.4g}" for p in self.params)
        return f"CalibrationResult(params=[{params}], MAPE={self.mape_pct:.2f}%, R2={self.r2:.4f})"


def _validate(workers: Sequence[int], times: Sequence[float], n_params: int) -> tuple[np.ndarray, np.ndarray]:
    workers_arr = np.asarray(workers, dtype=float)
    times_arr = np.asarray(times, dtype=float)
    if workers_arr.ndim != 1 or times_arr.ndim != 1 or workers_arr.size != times_arr.size:
        raise CalibrationError("workers and times must be equal-length vectors")
    if workers_arr.size < n_params:
        raise CalibrationError(
            f"need at least {n_params} measurements to fit {n_params} parameters, got {workers_arr.size}"
        )
    if np.any(workers_arr < 1):
        raise CalibrationError("worker counts must be >= 1")
    if np.any(times_arr <= 0):
        raise CalibrationError("measured times must be positive")
    return workers_arr, times_arr


def fit_time_family(
    family: TimeFamily,
    initial_params: Sequence[float],
    workers: Sequence[int],
    times: Sequence[float],
    bounds: tuple[Sequence[float], Sequence[float]] | None = None,
) -> CalibrationResult:
    """Fit ``family`` to measurements with non-linear least squares.

    ``family`` receives a vector of worker counts and the parameter vector
    and returns predicted seconds.  ``bounds`` defaults to non-negative
    parameters, which is the right prior for time coefficients.
    """
    initial = np.asarray(initial_params, dtype=float)
    workers_arr, times_arr = _validate(workers, times, initial.size)
    if bounds is None:
        bounds = (np.zeros_like(initial), np.full_like(initial, np.inf))

    def residuals(params: np.ndarray) -> np.ndarray:
        predicted = np.asarray(family(workers_arr, params), dtype=float)
        # Relative residuals: calibration should weight small-time points
        # (large worker counts) as much as the single-node run, the same
        # reason the paper analyses speedup instead of raw time.
        return (predicted - times_arr) / times_arr

    solution = scipy.optimize.least_squares(residuals, initial, bounds=bounds)
    if not solution.success:
        raise CalibrationError(f"least-squares fit failed: {solution.message}")
    params = tuple(float(p) for p in solution.x)
    predicted = np.asarray(family(workers_arr, solution.x), dtype=float)
    if np.any(predicted <= 0):
        raise CalibrationError("fitted family predicts non-positive times on the data grid")

    fitted_params = np.array(params)
    model = CallableModel(
        fn=lambda n: float(family(np.asarray([float(n)]), fitted_params)[0]),
        label="calibrated",
    )
    r2 = r_squared(times_arr, predicted) if np.unique(times_arr).size > 1 else 1.0
    return CalibrationResult(
        params=params,
        mape_pct=mape(times_arr, predicted),
        rmse_s=rmse(times_arr, predicted),
        r2=r2,
        model=model,
    )


def fit_linear_features(
    features: Sequence[Callable[[float], float]],
    workers: Sequence[int],
    times: Sequence[float],
) -> CalibrationResult:
    """Fit ``t(n) = sum_j theta_j * feature_j(n)`` with theta >= 0 (NNLS).

    This is the Ernest-style fit: the family is linear in its parameters,
    so non-negative least squares finds the global optimum directly.  The
    residuals are *relative* (each row is scaled by its measured time),
    for the same reason :func:`fit_time_family` uses relative residuals:
    the small-time points at large worker counts must weigh as much as
    the single-node run, or the fit ignores exactly the regime scaling
    studies care about.
    """
    if not features:
        raise CalibrationError("need at least one feature")
    workers_arr, times_arr = _validate(workers, times, len(features))
    matrix = np.array([[f(float(n)) for f in features] for n in workers_arr], dtype=float)
    # Row-scaling by 1/t turns ||A0 - t|| into the relative objective
    # ||A0/t - 1|| while keeping the problem NNLS-solvable.
    coeffs, _ = scipy.optimize.nnls(
        matrix / times_arr[:, np.newaxis], np.ones_like(times_arr)
    )
    predicted = matrix @ coeffs
    if np.any(predicted <= 0):
        raise CalibrationError("NNLS fit predicts non-positive times on the data grid")

    feature_tuple = tuple(features)
    coeff_arr = coeffs.copy()
    model = CallableModel(
        fn=lambda n: float(sum(c * f(float(n)) for c, f in zip(coeff_arr, feature_tuple))),
        label="nnls",
    )
    r2 = r_squared(times_arr, predicted) if np.unique(times_arr).size > 1 else 1.0
    return CalibrationResult(
        params=tuple(float(c) for c in coeffs),
        mape_pct=mape(times_arr, predicted),
        rmse_s=rmse(times_arr, predicted),
        r2=r2,
        model=model,
    )


def compare_models(
    models: dict[str, ScalabilityModel],
    workers: Sequence[int],
    times: Sequence[float],
) -> list[tuple[str, float]]:
    """Rank candidate models by MAPE against measurements (best first)."""
    if not models:
        raise CalibrationError("need at least one candidate model")
    workers_arr, times_arr = _validate(workers, times, 1)
    ranking = []
    for name, model in models.items():
        # One batched evaluation per candidate — the cost-algebra path —
        # instead of the deprecated per-point scalar time() loop.
        predicted = np.asarray(model.times(workers_arr), dtype=float)
        ranking.append((name, mape(times_arr, predicted)))
    ranking.sort(key=lambda pair: pair[1])
    return ranking
