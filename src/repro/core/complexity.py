"""Composable, vectorized time-complexity terms — the cost algebra.

The paper's framework views an algorithm as a series of BSP supersteps,
each the *sum* of a computation term and a communication term:

    t = tcp + tcm,    tcp = c(D) / n,    tcm = fcm(M, n)

This module provides small composable objects for those terms.  Every
term answers two questions:

* ``times(workers)`` — seconds over a whole *array* of worker counts in
  one vectorized numpy evaluation (the primary entry point; dense sweeps
  like ``n = 1..10_000`` are a single call), and
* ``time(workers)`` — the scalar convenience wrapper over a one-element
  grid (so scalar and batched evaluation cannot drift apart).

Terms compose into trees with combinators:

* :class:`SumCost` (``a + b``) — sequential phases,
* :class:`MaxCost` — overlapping phases, the slowest gates,
* :class:`ScaledCost` (``k * a``) — repeated iterations,
* :class:`AmortizedCost` — divide by ``n`` (weak-scaling per-instance
  metrics),
* :class:`PiecewiseCost` — different regimes on different worker ranges,
* :class:`NamedCost` — label a subtree so it shows up as one entry in
  :meth:`CostTerm.decompose`.

``decompose(workers)`` walks the tree and returns labeled component
arrays that sum to ``times(workers)`` — the generic replacement for
hand-written per-model ``computation_time`` / ``communication_time``
methods.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Callable, Iterable, Mapping
from dataclasses import dataclass

import numpy as np

from repro.core.communication import CommunicationModel, CompositeCommunication
from repro.core.errors import ModelError

#: Component kinds understood by the generic decomposition aliases.
KIND_COMPUTATION = "computation"
KIND_COMMUNICATION = "communication"
KIND_OVERHEAD = "overhead"


def as_worker_array(workers: Iterable[int] | np.ndarray) -> np.ndarray:
    """Coerce a worker grid to a validated 1-D float array.

    Accepts any iterable of counts (list, range, tuple, ndarray).  Worker
    counts must be finite and >= 1; fractional counts are rejected so a
    batched call can never silently evaluate a grid the scalar API would
    refuse.
    """
    array = np.asarray(workers, dtype=float)
    if array.ndim == 0:
        array = array.reshape(1)
    if array.ndim != 1:
        raise ModelError(f"worker grids must be 1-D, got shape {array.shape}")
    if array.size == 0:
        raise ModelError("worker grids must not be empty")
    if not np.all(np.isfinite(array)):
        raise ModelError("worker counts must be finite")
    if np.any(array < 1):
        raise ModelError(f"workers must be >= 1, got {array.min()}")
    if np.any(array != np.floor(array)):
        raise ModelError("worker counts must be integers")
    return array


@dataclass(frozen=True)
class Component:
    """One labeled entry of a term tree's decomposition."""

    name: str
    values: np.ndarray
    kind: str | None = None


def merge_components(components: Iterable[Component]) -> dict[str, np.ndarray]:
    """Merge components into a name -> array mapping, summing duplicates."""
    merged: dict[str, np.ndarray] = {}
    for component in components:
        if component.name in merged:
            merged[component.name] = merged[component.name] + component.values
        else:
            merged[component.name] = component.values
    return merged


class CostTerm(ABC):
    """A time-complexity term evaluable over any worker grid."""

    #: Default decomposition label; leaf classes override.
    term_name: str = "cost"
    #: Component classification (computation / communication / overhead).
    term_kind: str | None = None

    @abstractmethod
    def _times(self, grid: np.ndarray) -> np.ndarray:
        """Batched evaluation over a grid ``as_worker_array`` validated.

        The internal entry point: the public API validates the grid once
        at the tree root, and combinators hand the trusted array straight
        to their children — no per-node revalidation passes.
        """

    def times(self, workers: Iterable[int] | np.ndarray) -> np.ndarray:
        """Seconds this term contributes at every grid point (batched)."""
        return self._times(as_worker_array(workers))

    def time(self, workers: int) -> float:
        """Scalar convenience wrapper: a one-element batched evaluation."""
        # Full grid validation, so the scalar API rejects exactly what
        # the batched API rejects (fractional counts included).
        return float(self._times(as_worker_array([workers]))[0])

    def _components(self, grid: np.ndarray) -> tuple[Component, ...]:
        """Internal (trusted-grid) form of :meth:`components`."""
        return (Component(self.term_name, self._times(grid), self.term_kind),)

    def components(self, workers: Iterable[int] | np.ndarray) -> tuple[Component, ...]:
        """The labeled component arrays of this subtree.

        Leaf terms report themselves as a single component; combinators
        distribute (sum, scale) or collapse (max, piecewise) as their
        semantics allow.  The component values always sum to
        ``times(workers)``.
        """
        return self._components(as_worker_array(workers))

    def decompose(self, workers: Iterable[int] | np.ndarray) -> dict[str, np.ndarray]:
        """Labeled component arrays, merged by name.

        The arrays sum (within float rounding) to ``times(workers)`` —
        the generic replacement for per-model decomposition methods.
        """
        return merge_components(self._components(as_worker_array(workers)))

    def __add__(self, other: "CostTerm") -> "SumCost":
        if not isinstance(other, CostTerm):
            return NotImplemented
        return SumCost((self, other))

    def __mul__(self, factor: float) -> "ScaledCost":
        if not isinstance(factor, (int, float)):
            return NotImplemented
        return ScaledCost(self, float(factor))

    __rmul__ = __mul__


@dataclass(frozen=True)
class FixedCost(CostTerm):
    """A constant term, independent of the worker count.

    This is the classic Amdahl sequential fraction; the paper argues (via
    Schreiber) that a well-engineered framework can make it irrelevant,
    and our Spark runtime model uses a small one for scheduling overhead.
    """

    seconds: float

    term_name = "fixed"
    term_kind = KIND_OVERHEAD

    def __post_init__(self) -> None:
        if self.seconds < 0:
            raise ModelError(f"seconds must be non-negative, got {self.seconds}")

    def _times(self, grid: np.ndarray) -> np.ndarray:
        return np.full(grid.shape, self.seconds, dtype=float)


@dataclass(frozen=True)
class ComputationCost(CostTerm):
    """The paper's ``tcp = c(D) / n`` term.

    ``total_operations`` is ``c(D)`` — the floating-point work of one
    superstep over the whole input — and ``flops`` is the effective
    per-node throughput ``F``.  With ``parallel=False`` the term models a
    step that does not benefit from more workers.
    """

    total_operations: float
    flops: float
    parallel: bool = True

    term_name = "computation"
    term_kind = KIND_COMPUTATION

    def __post_init__(self) -> None:
        if self.total_operations < 0:
            raise ModelError(f"total_operations must be non-negative, got {self.total_operations}")
        if self.flops <= 0:
            raise ModelError(f"flops must be positive, got {self.flops}")

    def _times(self, grid: np.ndarray) -> np.ndarray:
        single = self.total_operations / self.flops
        if self.parallel:
            return single / grid
        return np.full(grid.shape, single, dtype=float)


@dataclass(frozen=True)
class ImbalancedComputationCost(CostTerm):
    """Computation gated by the most loaded worker.

    The graph-inference model uses ``tcp = max_i(E_i) * c(S) / F``: the
    superstep ends when the worker holding the most edges finishes.
    ``load_of_max_worker`` maps a worker count to the *operation count* on
    that heaviest worker (e.g. the Monte-Carlo ``max_i(E_i)`` estimate
    multiplied by the per-edge cost).
    """

    load_of_max_worker: Callable[[int], float]
    flops: float

    term_name = "computation"
    term_kind = KIND_COMPUTATION

    def __post_init__(self) -> None:
        if self.flops <= 0:
            raise ModelError(f"flops must be positive, got {self.flops}")

    def _times(self, grid: np.ndarray) -> np.ndarray:
        loads = np.array(
            [float(self.load_of_max_worker(int(n))) for n in grid], dtype=float
        )
        if np.any(loads < 0):
            raise ModelError(
                f"load_of_max_worker returned a negative load: {loads.min()}"
            )
        return loads / self.flops


@dataclass(frozen=True)
class TabulatedCost(CostTerm):
    """A term backed by a fixed ``workers -> seconds`` table.

    The vectorized form of measurement- or Monte-Carlo-backed terms (the
    BP model's ``max_i(E_i)`` grid, :class:`~repro.core.model.MeasuredModel`).
    Queries off the table raise — tabulated data is never interpolated.
    """

    entries: tuple[tuple[int, float], ...]
    description: str = "tabulated cost"

    term_name = "tabulated"

    def __post_init__(self) -> None:
        if not self.entries:
            raise ModelError(f"{self.description} needs at least one entry")
        seen = set()
        for workers, seconds in self.entries:
            if workers < 1:
                raise ModelError(f"worker counts must be >= 1, got {workers}")
            if seconds < 0:
                raise ModelError(f"{self.description} values must be non-negative, got {seconds}")
            if workers in seen:
                raise ModelError(f"duplicate entry for {workers} workers")
            seen.add(workers)
        # The lookup arrays depend only on the frozen entries; build them
        # once instead of per evaluation (they are not dataclass fields,
        # so equality/repr are unaffected).
        ordered = sorted(self.entries)
        object.__setattr__(
            self, "_keys", np.array([n for n, _t in ordered], dtype=float)
        )
        object.__setattr__(
            self, "_values", np.array([t for _n, t in ordered], dtype=float)
        )

    @classmethod
    def from_mapping(
        cls, mapping: Mapping[int, float], description: str = "tabulated cost"
    ) -> "TabulatedCost":
        return cls(
            tuple((int(n), float(t)) for n, t in sorted(mapping.items())),
            description,
        )

    @property
    def workers_grid(self) -> tuple[int, ...]:
        """The worker counts the table covers, sorted."""
        return tuple(sorted(n for n, _t in self.entries))

    def _times(self, grid: np.ndarray) -> np.ndarray:
        keys: np.ndarray = self._keys
        values: np.ndarray = self._values
        positions = np.searchsorted(keys, grid)
        missing = (positions >= keys.size) | (keys[np.minimum(positions, keys.size - 1)] != grid)
        if np.any(missing):
            # Report the queried value verbatim: truncating a fractional
            # count (reachable via continuous_times) would name an
            # on-grid worker count as the missing one.
            absent = float(grid[missing][0])
            label = int(absent) if absent == int(absent) else absent
            raise ModelError(
                f"no {self.description} entry for {label} workers;"
                f" grid is {list(int(k) for k in keys)}"
            )
        return values[positions]


@dataclass(frozen=True)
class CommunicationCost(CostTerm):
    """The paper's ``tcm = fcm(M, n)`` term.

    ``bits`` is the payload of one logical transfer (``M`` expressed in
    bits); the topology decides how many sequential rounds occur.
    """

    model: CommunicationModel | CompositeCommunication
    bits: float

    term_name = "communication"
    term_kind = KIND_COMMUNICATION

    def __post_init__(self) -> None:
        if self.bits < 0:
            raise ModelError(f"bits must be non-negative, got {self.bits}")

    def _times(self, grid: np.ndarray) -> np.ndarray:
        return self.model.times(self.bits, grid)


@dataclass(frozen=True)
class SumCost(CostTerm):
    """Sequential composition: computation then communication, etc."""

    terms: tuple[CostTerm, ...]

    def __post_init__(self) -> None:
        if not self.terms:
            raise ModelError("SumCost needs at least one term")

    def _times(self, grid: np.ndarray) -> np.ndarray:
        total = self.terms[0]._times(grid)
        for term in self.terms[1:]:
            total = total + term._times(grid)
        return total

    def _components(self, grid: np.ndarray) -> tuple[Component, ...]:
        collected: list[Component] = []
        for term in self.terms:
            collected.extend(term._components(grid))
        return tuple(collected)


@dataclass(frozen=True)
class MaxCost(CostTerm):
    """Concurrent composition: overlapping phases, the slowest one gates.

    Not additively decomposable: the subtree reports a single component
    (label it with :class:`NamedCost` for a readable name).
    """

    terms: tuple[CostTerm, ...]

    term_name = "max"

    def __post_init__(self) -> None:
        if not self.terms:
            raise ModelError("MaxCost needs at least one term")

    def _times(self, grid: np.ndarray) -> np.ndarray:
        total = self.terms[0]._times(grid)
        for term in self.terms[1:]:
            total = np.maximum(total, term._times(grid))
        return total


@dataclass(frozen=True)
class ScaledCost(CostTerm):
    """A term repeated ``factor`` times (e.g. iterations of a superstep)."""

    term: CostTerm
    factor: float

    def __post_init__(self) -> None:
        if self.factor < 0:
            raise ModelError(f"factor must be non-negative, got {self.factor}")

    def _times(self, grid: np.ndarray) -> np.ndarray:
        return self.factor * self.term._times(grid)

    def _components(self, grid: np.ndarray) -> tuple[Component, ...]:
        return tuple(
            Component(c.name, self.factor * c.values, c.kind)
            for c in self.term._components(grid)
        )


@dataclass(frozen=True)
class AmortizedCost(CostTerm):
    """A term divided by the worker count.

    The weak-scaling metric of the paper's Figure 3: every superstep
    processes ``S * n`` instances, so per-instance time is the superstep
    divided by ``n``.  Division distributes over the child's components,
    so decomposition survives amortization.
    """

    term: CostTerm

    def _times(self, grid: np.ndarray) -> np.ndarray:
        return self.term._times(grid) / grid

    def _components(self, grid: np.ndarray) -> tuple[Component, ...]:
        return tuple(
            Component(c.name, c.values / grid, c.kind)
            for c in self.term._components(grid)
        )


@dataclass(frozen=True)
class PiecewiseCost(CostTerm):
    """Different cost regimes on different worker ranges.

    ``pieces`` maps a minimum worker count to the term active from that
    count (inclusive) until the next threshold.  The first threshold must
    be 1 so every grid point falls in some regime.  Used e.g. for
    overheads that only exist once work is actually distributed
    (``n >= 2``).  Not additively decomposable: reports one component.
    """

    pieces: tuple[tuple[int, CostTerm], ...]

    term_name = "piecewise"

    def __post_init__(self) -> None:
        if not self.pieces:
            raise ModelError("PiecewiseCost needs at least one piece")
        thresholds = [threshold for threshold, _term in self.pieces]
        if thresholds != sorted(thresholds):
            raise ModelError("PiecewiseCost thresholds must be ascending")
        if len(set(thresholds)) != len(thresholds):
            raise ModelError("PiecewiseCost thresholds must be unique")
        if thresholds[0] != 1:
            raise ModelError(
                f"the first PiecewiseCost threshold must be 1, got {thresholds[0]}"
            )

    def _times(self, grid: np.ndarray) -> np.ndarray:
        result = np.empty(grid.shape, dtype=float)
        thresholds = [threshold for threshold, _term in self.pieces]
        # Each piece is evaluated only on its own slice of the grid, so a
        # domain-restricted term (a table defined for n >= 2, say) never
        # sees worker counts outside its regime.
        for index, (threshold, term) in enumerate(self.pieces):
            active = grid >= threshold
            if index + 1 < len(self.pieces):
                active &= grid < thresholds[index + 1]
            if np.any(active):
                result[active] = term._times(grid[active])
        return result


@dataclass(frozen=True)
class OverheadCost(CostTerm):
    """Framework overhead: a fixed part plus a per-worker part.

    The paper's future-work feedback loop for graph engines: execution
    overhead "takes over with larger number of workers", modelled as
    ``seconds + seconds_per_worker * n``.
    """

    seconds: float = 0.0
    seconds_per_worker: float = 0.0

    term_name = "overhead"
    term_kind = KIND_OVERHEAD

    def __post_init__(self) -> None:
        if self.seconds < 0 or self.seconds_per_worker < 0:
            raise ModelError("overhead terms must be non-negative")

    def _times(self, grid: np.ndarray) -> np.ndarray:
        return self.seconds + self.seconds_per_worker * grid


@dataclass(frozen=True)
class NamedCost(CostTerm):
    """Label a subtree: one named entry in ``decompose()``.

    ``kind`` classifies the component for the generic
    ``computation_time`` / ``communication_time`` aliases; when omitted
    it is inherited from the subtree if all its components agree.
    """

    name: str
    term: CostTerm
    kind: str | None = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ModelError("NamedCost needs a non-empty name")

    def _times(self, grid: np.ndarray) -> np.ndarray:
        return self.term._times(grid)

    def _components(self, grid: np.ndarray) -> tuple[Component, ...]:
        children = self.term._components(grid)
        kind = self.kind
        if kind is None:
            child_kinds = {c.kind for c in children}
            if len(child_kinds) == 1:
                kind = child_kinds.pop()
        # Components sum to the subtree's total, so the values can be
        # folded from the child arrays without re-walking the tree.
        values = children[0].values
        for child in children[1:]:
            values = values + child.values
        return (Component(self.name, values, kind),)


@dataclass(frozen=True)
class CallableCost(CostTerm):
    """Escape hatch: wrap an arbitrary ``workers -> seconds`` function.

    The function is evaluated point-by-point, so this term does not
    benefit from vectorization — reserve it for glue (e.g. replication
    curves) that has no closed form.
    """

    fn: Callable[[int], float]
    name: str = "callable"
    kind: str | None = None

    def _times(self, grid: np.ndarray) -> np.ndarray:
        values = np.array([float(self.fn(int(n))) for n in grid], dtype=float)
        if np.any(values < 0):
            raise ModelError(
                f"cost function {self.name!r} returned negative time {values.min()}"
            )
        return values

    def _components(self, grid: np.ndarray) -> tuple[Component, ...]:
        return (Component(self.name, self._times(grid), self.kind),)


#: Short combinator aliases — the algebra's public vocabulary.
Sum = SumCost
Max = MaxCost
Scaled = ScaledCost
Amortized = AmortizedCost
Piecewise = PiecewiseCost
Named = NamedCost


def superstep(computation: CostTerm, communication: CostTerm) -> SumCost:
    """One BSP superstep: ``t = tcp + tcm`` (Section III of the paper)."""
    return SumCost((computation, communication))


def iterations(step: CostTerm, count: int) -> ScaledCost:
    """``count`` repetitions of ``step`` (a full training run)."""
    if count < 1:
        raise ModelError(f"iteration count must be >= 1, got {count}")
    return ScaledCost(step, float(count))
