"""Composable time-complexity terms.

The paper's framework views an algorithm as a series of BSP supersteps,
each the *sum* of a computation term and a communication term:

    t = tcp + tcm,    tcp = c(D) / n,    tcm = fcm(M, n)

This module provides small composable objects for those terms.  Every term
answers ``time(workers)`` in seconds; terms can be added (sequential
phases), scaled (repeated iterations) and combined with ``max``
(imbalanced parallel phases, used by the graph-inference model where the
slowest worker gates the superstep).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Callable
from dataclasses import dataclass

from repro.core.communication import CommunicationModel, CompositeCommunication
from repro.core.errors import ModelError


class CostTerm(ABC):
    """A time-complexity term evaluable at any worker count."""

    @abstractmethod
    def time(self, workers: int) -> float:
        """Seconds this term contributes when run on ``workers`` nodes."""

    def _check_workers(self, workers: int) -> None:
        if workers < 1:
            raise ModelError(f"workers must be >= 1, got {workers}")

    def __add__(self, other: "CostTerm") -> "SumCost":
        if not isinstance(other, CostTerm):
            return NotImplemented
        return SumCost((self, other))

    def __mul__(self, factor: float) -> "ScaledCost":
        if not isinstance(factor, (int, float)):
            return NotImplemented
        return ScaledCost(self, float(factor))

    __rmul__ = __mul__


@dataclass(frozen=True)
class FixedCost(CostTerm):
    """A constant term, independent of the worker count.

    This is the classic Amdahl sequential fraction; the paper argues (via
    Schreiber) that a well-engineered framework can make it irrelevant,
    and our Spark runtime model uses a small one for scheduling overhead.
    """

    seconds: float

    def __post_init__(self) -> None:
        if self.seconds < 0:
            raise ModelError(f"seconds must be non-negative, got {self.seconds}")

    def time(self, workers: int) -> float:
        self._check_workers(workers)
        return self.seconds


@dataclass(frozen=True)
class ComputationCost(CostTerm):
    """The paper's ``tcp = c(D) / n`` term.

    ``total_operations`` is ``c(D)`` — the floating-point work of one
    superstep over the whole input — and ``flops`` is the effective
    per-node throughput ``F``.  With ``parallel=False`` the term models a
    step that does not benefit from more workers.
    """

    total_operations: float
    flops: float
    parallel: bool = True

    def __post_init__(self) -> None:
        if self.total_operations < 0:
            raise ModelError(f"total_operations must be non-negative, got {self.total_operations}")
        if self.flops <= 0:
            raise ModelError(f"flops must be positive, got {self.flops}")

    def time(self, workers: int) -> float:
        self._check_workers(workers)
        single = self.total_operations / self.flops
        return single / workers if self.parallel else single


@dataclass(frozen=True)
class ImbalancedComputationCost(CostTerm):
    """Computation gated by the most loaded worker.

    The graph-inference model uses ``tcp = max_i(E_i) * c(S) / F``: the
    superstep ends when the worker holding the most edges finishes.
    ``load_of_max_worker`` maps a worker count to the *operation count* on
    that heaviest worker (e.g. the Monte-Carlo ``max_i(E_i)`` estimate
    multiplied by the per-edge cost).
    """

    load_of_max_worker: Callable[[int], float]
    flops: float

    def __post_init__(self) -> None:
        if self.flops <= 0:
            raise ModelError(f"flops must be positive, got {self.flops}")

    def time(self, workers: int) -> float:
        self._check_workers(workers)
        load = float(self.load_of_max_worker(workers))
        if load < 0:
            raise ModelError(f"load_of_max_worker returned a negative load: {load}")
        return load / self.flops


@dataclass(frozen=True)
class CommunicationCost(CostTerm):
    """The paper's ``tcm = fcm(M, n)`` term.

    ``bits`` is the payload of one logical transfer (``M`` expressed in
    bits); the topology decides how many sequential rounds occur.
    """

    model: CommunicationModel | CompositeCommunication
    bits: float

    def __post_init__(self) -> None:
        if self.bits < 0:
            raise ModelError(f"bits must be non-negative, got {self.bits}")

    def time(self, workers: int) -> float:
        self._check_workers(workers)
        return self.model.time(self.bits, workers)


@dataclass(frozen=True)
class SumCost(CostTerm):
    """Sequential composition: computation then communication, etc."""

    terms: tuple[CostTerm, ...]

    def __post_init__(self) -> None:
        if not self.terms:
            raise ModelError("SumCost needs at least one term")

    def time(self, workers: int) -> float:
        self._check_workers(workers)
        return sum(term.time(workers) for term in self.terms)


@dataclass(frozen=True)
class MaxCost(CostTerm):
    """Concurrent composition: overlapping phases, the slowest one gates."""

    terms: tuple[CostTerm, ...]

    def __post_init__(self) -> None:
        if not self.terms:
            raise ModelError("MaxCost needs at least one term")

    def time(self, workers: int) -> float:
        self._check_workers(workers)
        return max(term.time(workers) for term in self.terms)


@dataclass(frozen=True)
class ScaledCost(CostTerm):
    """A term repeated ``factor`` times (e.g. iterations of a superstep)."""

    term: CostTerm
    factor: float

    def __post_init__(self) -> None:
        if self.factor < 0:
            raise ModelError(f"factor must be non-negative, got {self.factor}")

    def time(self, workers: int) -> float:
        self._check_workers(workers)
        return self.factor * self.term.time(workers)


@dataclass(frozen=True)
class CallableCost(CostTerm):
    """Escape hatch: wrap an arbitrary ``workers -> seconds`` function."""

    fn: Callable[[int], float]
    name: str = "callable"

    def time(self, workers: int) -> float:
        self._check_workers(workers)
        value = float(self.fn(workers))
        if value < 0:
            raise ModelError(f"cost function {self.name!r} returned negative time {value}")
        return value


def superstep(computation: CostTerm, communication: CostTerm) -> SumCost:
    """One BSP superstep: ``t = tcp + tcm`` (Section III of the paper)."""
    return SumCost((computation, communication))


def iterations(step: CostTerm, count: int) -> ScaledCost:
    """``count`` repetitions of ``step`` (a full training run)."""
    if count < 1:
        raise ModelError(f"iteration count must be >= 1, got {count}")
    return ScaledCost(step, float(count))
