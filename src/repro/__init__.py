"""repro — reproduction of "Modeling Scalability of Distributed Machine Learning".

Ulanov, Simanovsky and Marwah (ICDE 2017) propose a profiling-free
analytical framework for estimating the speedup of distributed ML
algorithms from hardware specifications alone.  This package implements
the framework (:mod:`repro.core`, :mod:`repro.models`) together with
every substrate the paper's evaluation depends on, simulated where the
original used unavailable hardware or data (:mod:`repro.simulate`,
:mod:`repro.nn`, :mod:`repro.graph`, :mod:`repro.mrf`,
:mod:`repro.distributed`), and drivers regenerating each table and
figure (:mod:`repro.experiments`), plus a declarative scenario engine
(:mod:`repro.scenarios`) that compiles hardware + algorithm + sweep-grid
descriptions into models and evaluates them at scale.

Quickstart::

    from repro.models import spark_mnist_figure2_model

    model = spark_mnist_figure2_model()
    print(model.optimal_workers(13))   # -> 9, as in the paper
    print(model.speedup(9))            # -> ~4.1x

See README.md for the overview, docs/architecture.md for the layer
diagram, and docs/scenarios.md for the scenario-spec schema.
"""

from repro.core.model import BSPModel, CallableModel, MeasuredModel, ScalabilityModel
from repro.core.speedup import SpeedupCurve, optimal_workers, speedup_grid

__version__ = "1.0.0"

__all__ = [
    "BSPModel",
    "CallableModel",
    "MeasuredModel",
    "ScalabilityModel",
    "SpeedupCurve",
    "optimal_workers",
    "speedup_grid",
    "__version__",
]
