"""Collective schedules replayed as flow batches over a topology.

Same communication patterns, same dependency structure and the same
deterministic orderings as :mod:`repro.simulate.collectives` — but each
dependency round is issued to a :class:`~repro.net.flows.FlowNetwork`
as one *batch* of concurrent flows, so transfers of the same round
share links max-min fairly instead of serialising per NIC port.  On a
``single-switch`` topology the two disciplines coincide (rounds either
use disjoint ports, or contend only at a single sink port where both
disciplines are work-conserving), which the differential harness pins.
"""

from __future__ import annotations

import math
from collections.abc import Mapping, Sequence

from repro.core.errors import SimulationError
from repro.net.flows import FlowNetwork, FlowRequest


def _validate_nodes(nodes: Sequence[int]) -> list[int]:
    node_list = list(nodes)
    if not node_list:
        raise SimulationError("a collective needs at least one node")
    if len(set(node_list)) != len(node_list):
        raise SimulationError(f"duplicate nodes in collective: {node_list}")
    return node_list


def linear_gather(
    network: FlowNetwork,
    ready: Mapping[int, float],
    sink: int,
    bits: float,
    tag: str = "gather",
) -> float:
    """All sources stream to ``sink`` concurrently; returns the finish time.

    One batch: the sink's ingress links are the shared bottleneck and the
    solver splits them fairly as sources come and go.
    """
    sources = _validate_nodes(list(ready))
    finish = max(ready[sink], 0.0) if sink in ready else 0.0
    requests = [
        FlowRequest(source, sink, bits, not_before=ready[source], tag=tag)
        for source in sorted(sources, key=lambda node: (ready[node], node))
        if source != sink
    ]
    for outcome in network.batch(requests):
        finish = max(finish, outcome.end)
    return finish


def tree_reduce(
    network: FlowNetwork,
    ready: Mapping[int, float],
    bits: float,
    tag: str = "tree-reduce",
) -> tuple[int, float]:
    """Binary combining tree; one batch per distance round."""
    nodes = sorted(_validate_nodes(list(ready)))
    current_ready = {node: ready[node] for node in nodes}
    distance = 1
    while distance < len(nodes):
        pairs = [
            (nodes[index + distance], nodes[index])
            for index in range(0, len(nodes) - distance, 2 * distance)
        ]
        outcomes = network.batch(
            [
                FlowRequest(sender, receiver, bits, not_before=current_ready[sender], tag=tag)
                for sender, receiver in pairs
            ]
        )
        for (_sender, receiver), outcome in zip(pairs, outcomes):
            current_ready[receiver] = max(current_ready[receiver], outcome.end)
        distance *= 2
    root = nodes[0]
    return root, current_ready[root]


def binomial_broadcast(
    network: FlowNetwork,
    root: int,
    root_ready: float,
    targets: Sequence[int],
    bits: float,
    tag: str = "broadcast",
) -> dict[int, float]:
    """Torrent-like broadcast, one batch per doubling round.

    The holder-to-receiver matching is identical to the endpoint model's
    (holders sorted by availability each serve the next waiting node);
    only the contention discipline within a round differs.
    """
    if root_ready < 0:
        raise SimulationError(f"root_ready must be non-negative, got {root_ready}")
    target_list = _validate_nodes(list(targets))
    if root in target_list:
        raise SimulationError(f"root {root} must not appear among broadcast targets")
    holds_at = {root: root_ready}
    waiting = list(target_list)
    while waiting:
        holders = sorted(holds_at, key=lambda node: (holds_at[node], node))
        pairs = []
        for holder in holders:
            if not waiting:
                break
            pairs.append((holder, waiting.pop(0)))
        outcomes = network.batch(
            [
                FlowRequest(holder, receiver, bits, not_before=holds_at[holder], tag=tag)
                for holder, receiver in pairs
            ]
        )
        for (_holder, receiver), outcome in zip(pairs, outcomes):
            holds_at[receiver] = outcome.end
    return holds_at


def two_wave_aggregate(
    network: FlowNetwork,
    ready: Mapping[int, float],
    driver: int,
    bits: float,
    tag: str = "two-wave",
) -> float:
    """Spark ``treeAggregate`` with two waves; returns the driver finish.

    Wave 1 is one batch (all groups' member flows concurrently — each
    leader's ingress is its group's bottleneck); wave 2 is a second
    batch of leader-to-driver flows.
    """
    workers = sorted(_validate_nodes(list(ready)))
    if driver in workers:
        raise SimulationError(f"driver {driver} must not appear among the workers")
    group_count = max(1, math.ceil(math.sqrt(len(workers))))
    groups = [workers[start::group_count] for start in range(group_count)]
    groups = [group for group in groups if group]

    wave_one: list[tuple[int, int]] = []  # (member, leader) in batch order
    for group in groups:
        leader = group[0]
        for member in sorted(group[1:], key=lambda node: (ready[node], node)):
            wave_one.append((member, leader))
    outcomes = network.batch(
        [
            FlowRequest(member, leader, bits, not_before=ready[member], tag=tag)
            for member, leader in wave_one
        ]
    )
    leader_ready = {group[0]: ready[group[0]] for group in groups}
    for (_member, leader), outcome in zip(wave_one, outcomes):
        leader_ready[leader] = max(leader_ready[leader], outcome.end)

    driver_finish = 0.0
    leaders = sorted(leader_ready, key=lambda node: (leader_ready[node], node))
    outcomes = network.batch(
        [
            FlowRequest(leader, driver, bits, not_before=leader_ready[leader], tag=tag)
            for leader in leaders
        ]
    )
    for outcome in outcomes:
        driver_finish = max(driver_finish, outcome.end)
    return driver_finish


def ring_allreduce(
    network: FlowNetwork,
    ready: Mapping[int, float],
    bits: float,
    tag: str = "ring",
) -> dict[int, float]:
    """Ring all-reduce; one batch per chunk-forwarding round."""
    nodes = sorted(_validate_nodes(list(ready)))
    count = len(nodes)
    current_ready = {node: ready[node] for node in nodes}
    if count == 1:
        return current_ready
    chunk = bits / count
    for _round in range(2 * (count - 1)):
        outcomes = network.batch(
            [
                FlowRequest(
                    node,
                    nodes[(index + 1) % count],
                    chunk,
                    not_before=current_ready[node],
                    tag=tag,
                )
                for index, node in enumerate(nodes)
            ]
        )
        ends = {
            nodes[(index + 1) % count]: outcome.end
            for index, outcome in enumerate(outcomes)
        }
        for node, end in ends.items():
            current_ready[node] = max(current_ready[node], end)
    return current_ready


def all_to_all_shuffle(
    network: FlowNetwork,
    ready: Mapping[int, float],
    total_bits: float,
    tag: str = "shuffle",
) -> dict[int, float]:
    """Shuffle ``total_bits`` evenly; one batch per matching round."""
    if total_bits < 0:
        raise SimulationError(f"total_bits must be non-negative, got {total_bits}")
    nodes = sorted(_validate_nodes(list(ready)))
    count = len(nodes)
    current_ready = {node: ready[node] for node in nodes}
    if count == 1:
        return current_ready
    pair_bits = total_bits / (count * count)
    finish = dict(current_ready)
    for offset in range(1, count):
        outcomes = network.batch(
            [
                FlowRequest(
                    node,
                    nodes[(index + offset) % count],
                    pair_bits,
                    not_before=current_ready[node],
                    tag=tag,
                )
                for index, node in enumerate(nodes)
            ]
        )
        for index, outcome in enumerate(outcomes):
            receiver = nodes[(index + offset) % count]
            finish[receiver] = max(finish[receiver], outcome.end)
    return finish
