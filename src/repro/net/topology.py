"""Explicit cluster topologies as capacitated link graphs.

The endpoint-contention :class:`~repro.simulate.network.Network` models
every cluster as one non-blocking switch: transfers only ever queue on
the NIC of a sender or receiver.  Real clusters are link *graphs* —
racks behind oversubscribed uplinks, fat-tree fabrics, tori, sites
joined by WAN circuits — and the dominant scaling limiter is usually a
shared link in the middle, not a port at the edge.

This module makes the graph explicit.  A :class:`Topology` is a set of
nodes (hosts ``0..host_count-1`` plus internal switches), a set of
directed capacitated :class:`Link` edges with propagation delay, and a
deterministic shortest-path route for every host pair.  Factories build
the five supported shapes:

* ``single-switch`` — every host on one non-blocking switch; the only
  capacitated links are the host ports, so this degenerates to the
  endpoint-contention model (the differential harness pins that).
* ``oversubscribed-racks`` — hosts in racks behind top-of-rack
  switches whose core uplinks carry ``hosts_per_rack / ratio`` times
  the host bandwidth: ``ratio`` is the classic oversubscription knob.
* ``fat-tree`` — the k-ary Clos fabric with destination-based
  deterministic routing (one path per pair, as without ECMP).
* ``torus-2d`` — a wrap-around grid with dimension-ordered (X then Y)
  routing; every grid cell is a router, the first ``host_count`` cells
  carry hosts.
* ``geo`` — sites (each a single switch) fully meshed by WAN links
  whose latency is a first-class, sweepable parameter.

Routes are pure functions of ``(source, destination)`` — no randomness,
no load awareness — so a topology contributes nothing to a scenario's
seed story and sweeps stay byte-reproducible.
"""

from __future__ import annotations

import difflib
import math
from collections.abc import Mapping
from dataclasses import dataclass

from repro.core.errors import ScenarioError, SimulationError
from repro.hardware.specs import LinkSpec

#: The topology kinds a ``backend.topology`` block may name.
TOPOLOGY_KINDS = (
    "single-switch",
    "fat-tree",
    "oversubscribed-racks",
    "torus-2d",
    "geo",
)

#: Kind-specific option keys (``kind`` and ``tcp`` are always allowed).
TOPOLOGY_KIND_OPTIONS: dict[str, tuple[str, ...]] = {
    "single-switch": (),
    "fat-tree": ("k",),
    "oversubscribed-racks": ("racks", "oversubscription_ratio"),
    "torus-2d": (),
    "geo": ("sites", "wan_latency_ms", "wan_link"),
}

#: Topology options that may appear as sweep axes (per-point overrides).
TOPOLOGY_SWEEP_AXES = ("oversubscription_ratio", "wan_latency_ms")

#: Default WAN circuit of the ``geo`` topology (a hardware-catalog slug).
DEFAULT_WAN_LINK = "eth-wan"


@dataclass(frozen=True)
class Link:
    """One directed capacitated edge of the topology graph."""

    source: int
    destination: int
    capacity_bps: float
    latency_s: float = 0.0

    def __post_init__(self) -> None:
        if self.capacity_bps <= 0:
            raise SimulationError(
                f"link capacity must be positive, got {self.capacity_bps}"
            )
        if self.latency_s < 0:
            raise SimulationError(
                f"link latency must be non-negative, got {self.latency_s}"
            )


class Topology:
    """A link graph with deterministic per-pair routes.

    ``router(source, destination)`` returns the tuple of link indices a
    host-to-host flow traverses; routes are computed lazily and cached
    (grids can be large), and each cached route is checked once to be a
    connected ``source -> destination`` path.
    """

    def __init__(
        self,
        kind: str,
        host_count: int,
        links: tuple[Link, ...],
        router,
        params: Mapping[str, object] | None = None,
    ):
        if host_count < 1:
            raise SimulationError(f"host_count must be >= 1, got {host_count}")
        self.kind = kind
        self.host_count = host_count
        self.links = links
        self.params = dict(params or {})
        self._router = router
        self._route_cache: dict[tuple[int, int], tuple[int, ...]] = {}

    @property
    def capacities(self) -> dict[int, float]:
        """Link index -> capacity in bit/s (the solver's capacity map)."""
        return {index: link.capacity_bps for index, link in enumerate(self.links)}

    def _check_host(self, host: int) -> None:
        if not 0 <= host < self.host_count:
            raise SimulationError(
                f"host {host} out of range 0..{self.host_count - 1}"
            )

    def route(self, source: int, destination: int) -> tuple[int, ...]:
        """Link indices of the ``source -> destination`` path."""
        self._check_host(source)
        self._check_host(destination)
        if source == destination:
            return ()
        key = (source, destination)
        cached = self._route_cache.get(key)
        if cached is None:
            cached = tuple(self._router(source, destination))
            at = source
            for index in cached:
                link = self.links[index]
                if link.source != at:
                    raise SimulationError(
                        f"route {source}->{destination} is not a connected path"
                    )
                at = link.destination
            if at != destination:
                raise SimulationError(
                    f"route {source}->{destination} ends at node {at}"
                )
            self._route_cache[key] = cached
        return cached

    def route_latency(self, source: int, destination: int) -> float:
        """Total propagation delay along the route, in seconds."""
        return sum(self.links[index].latency_s for index in self.route(source, destination))

    def describe(self) -> dict[str, object]:
        """JSON-serialisable summary (for backend ``config()`` payloads)."""
        return {
            "kind": self.kind,
            "hosts": self.host_count,
            "links": len(self.links),
            **self.params,
        }


class _Builder:
    """Accumulates directed links and a ``(u, v) -> index`` lookup."""

    def __init__(self) -> None:
        self.links: list[Link] = []
        self.index: dict[tuple[int, int], int] = {}

    def add(self, source: int, destination: int, capacity_bps: float, latency_s: float) -> int:
        key = (source, destination)
        if key in self.index:
            raise SimulationError(f"duplicate link {source}->{destination}")
        self.index[key] = len(self.links)
        self.links.append(Link(source, destination, capacity_bps, latency_s))
        return self.index[key]

    def duplex(self, a: int, b: int, capacity_bps: float, latency_s: float) -> None:
        self.add(a, b, capacity_bps, latency_s)
        self.add(b, a, capacity_bps, latency_s)


def single_switch(host_count: int, link: LinkSpec) -> Topology:
    """Every host port on one non-blocking switch (the paper's testbed)."""
    switch = host_count
    builder = _Builder()
    for host in range(host_count):
        builder.duplex(host, switch, link.bandwidth_bps, link.latency_s / 2.0)

    def router(source: int, destination: int):
        return (builder.index[(source, switch)], builder.index[(switch, destination)])

    return Topology("single-switch", host_count, tuple(builder.links), router)


def oversubscribed_racks(
    host_count: int,
    link: LinkSpec,
    racks: int = 2,
    oversubscription_ratio: float = 1.0,
) -> Topology:
    """Racks of hosts behind top-of-rack switches and a shared core.

    Hosts are placed contiguously (host 0 — the BSP driver — lands in
    rack 0).  Each ToR's core uplink carries
    ``hosts_per_rack * B / ratio``: at ``ratio = 1`` the fabric has full
    bisection bandwidth, larger ratios starve cross-rack traffic.
    """
    if racks < 1:
        raise SimulationError(f"racks must be >= 1, got {racks}")
    if oversubscription_ratio <= 0:
        raise SimulationError(
            f"oversubscription_ratio must be positive, got {oversubscription_ratio}"
        )
    effective_racks = min(racks, host_count)
    per_rack = math.ceil(host_count / effective_racks)
    tor = [host_count + rack for rack in range(effective_racks)]
    core = host_count + effective_racks
    uplink_bps = per_rack * link.bandwidth_bps / oversubscription_ratio
    builder = _Builder()
    for host in range(host_count):
        builder.duplex(host, tor[host // per_rack], link.bandwidth_bps, link.latency_s / 2.0)
    for rack in range(effective_racks):
        builder.duplex(tor[rack], core, uplink_bps, link.latency_s / 2.0)

    def router(source: int, destination: int):
        src_rack, dst_rack = source // per_rack, destination // per_rack
        up = builder.index[(source, tor[src_rack])]
        down = builder.index[(tor[dst_rack], destination)]
        if src_rack == dst_rack:
            return (up, down)
        return (
            up,
            builder.index[(tor[src_rack], core)],
            builder.index[(core, tor[dst_rack])],
            down,
        )

    return Topology(
        "oversubscribed-racks",
        host_count,
        tuple(builder.links),
        router,
        params={
            "racks": effective_racks,
            "hosts_per_rack": per_rack,
            "oversubscription_ratio": float(oversubscription_ratio),
            "uplink_bps": uplink_bps,
        },
    )


def fat_tree_capacity(k: int) -> int:
    """Hosts a k-ary fat-tree supports (``k^3 / 4``)."""
    return (k * k * k) // 4


def fat_tree_arity(host_count: int) -> int:
    """The smallest even ``k`` whose fat-tree holds ``host_count`` hosts."""
    k = 2
    while fat_tree_capacity(k) < host_count:
        k += 2
    return k


def fat_tree(host_count: int, link: LinkSpec, k: int | None = None) -> Topology:
    """The k-ary fat-tree (Al-Fares et al.) with deterministic routing.

    All links share the host bandwidth — a fat-tree's full bisection
    comes from path *multiplicity*, and with deterministic
    destination-based routing (no ECMP) collisions on shared upstream
    links are exactly the contention the flow solver resolves.
    """
    if k is None:
        k = fat_tree_arity(host_count)
    if k < 2 or k % 2:
        raise SimulationError(f"fat-tree arity k must be even and >= 2, got {k}")
    if host_count > fat_tree_capacity(k):
        raise SimulationError(
            f"fat-tree with k={k} holds {fat_tree_capacity(k)} hosts,"
            f" got {host_count}"
        )
    half = k // 2
    base_edge = host_count
    base_agg = base_edge + k * half
    base_core = base_agg + k * half
    builder = _Builder()
    bandwidth, hop_latency = link.bandwidth_bps, link.latency_s / 2.0

    def pod_of(host: int) -> int:
        return host // (half * half)

    def edge_of(host: int) -> int:
        pod = pod_of(host)
        return base_edge + pod * half + (host % (half * half)) // half

    for host in range(host_count):
        builder.duplex(host, edge_of(host), bandwidth, hop_latency)
    for pod in range(k):
        for edge in range(half):
            for agg in range(half):
                builder.duplex(
                    base_edge + pod * half + edge,
                    base_agg + pod * half + agg,
                    bandwidth,
                    hop_latency,
                )
    for agg in range(half):
        for core in range(half):
            for pod in range(k):
                builder.duplex(
                    base_agg + pod * half + agg,
                    base_core + agg * half + core,
                    bandwidth,
                    hop_latency,
                )

    def router(source: int, destination: int):
        src_edge, dst_edge = edge_of(source), edge_of(destination)
        up = builder.index[(source, src_edge)]
        down = builder.index[(dst_edge, destination)]
        if src_edge == dst_edge:
            return (up, down)
        # Destination-based deterministic spread, as in the original
        # fat-tree routing tables: the destination picks the aggregation
        # and core columns, so every path exists and stays fixed.
        agg_column = destination % half
        src_agg = base_agg + pod_of(source) * half + agg_column
        dst_agg = base_agg + pod_of(destination) * half + agg_column
        if pod_of(source) == pod_of(destination):
            return (
                up,
                builder.index[(src_edge, src_agg)],
                builder.index[(src_agg, dst_edge)],
                down,
            )
        core = base_core + agg_column * half + (destination // half) % half
        return (
            up,
            builder.index[(src_edge, src_agg)],
            builder.index[(src_agg, core)],
            builder.index[(core, dst_agg)],
            builder.index[(dst_agg, dst_edge)],
            down,
        )

    return Topology(
        "fat-tree",
        host_count,
        tuple(builder.links),
        router,
        params={"k": k, "capacity_hosts": fat_tree_capacity(k)},
    )


def torus_2d(host_count: int, link: LinkSpec) -> Topology:
    """A 2-D wrap-around grid with dimension-ordered (X then Y) routing.

    Every grid cell is a router; the first ``host_count`` cells carry
    hosts.  Each hop pays the full link latency (hops are physical
    cables here, not a switch traversal), and a host can drive all four
    of its ports at once — the direct-connect property tori are built
    for.  Two-cell rings collapse the direct and wrap-around cables
    into one link.
    """
    cols = max(1, math.ceil(math.sqrt(host_count)))
    rows = max(1, math.ceil(host_count / cols))
    builder = _Builder()

    def cell(row: int, col: int) -> int:
        return row * cols + col

    for row in range(rows):
        for col in range(cols):
            if col + 1 < cols:
                builder.duplex(cell(row, col), cell(row, col + 1), link.bandwidth_bps, link.latency_s)
            if row + 1 < rows:
                builder.duplex(cell(row, col), cell(row + 1, col), link.bandwidth_bps, link.latency_s)
        if cols > 2:
            builder.duplex(cell(row, cols - 1), cell(row, 0), link.bandwidth_bps, link.latency_s)
    if rows > 2:
        for col in range(cols):
            builder.duplex(cell(rows - 1, col), cell(0, col), link.bandwidth_bps, link.latency_s)

    def steps(origin: int, target: int, size: int) -> list[int]:
        """Positions visited moving the shortest wrap-around way."""
        if origin == target or size == 1:
            return []
        forward = (target - origin) % size
        backward = (origin - target) % size
        step = 1 if forward <= backward else -1
        count = min(forward, backward)
        return [(origin + step * i) % size for i in range(1, count + 1)]

    def router(source: int, destination: int):
        row, col = source // cols, source % cols
        dst_row, dst_col = destination // cols, destination % cols
        path = []
        at = (row, col)
        for next_col in steps(col, dst_col, cols):
            path.append(builder.index[(cell(*at), cell(at[0], next_col))])
            at = (at[0], next_col)
        for next_row in steps(at[0], dst_row, rows):
            path.append(builder.index[(cell(*at), cell(next_row, at[1]))])
            at = (next_row, at[1])
        return tuple(path)

    return Topology(
        "torus-2d",
        host_count,
        tuple(builder.links),
        router,
        params={"rows": rows, "cols": cols},
    )


def geo(
    host_count: int,
    link: LinkSpec,
    sites: int = 2,
    wan_latency_s: float = 0.03,
    wan_bandwidth_bps: float | None = None,
) -> Topology:
    """Geo-distributed sites joined by a full mesh of WAN circuits.

    Each site is a single switch (intra-site traffic behaves like
    ``single-switch``); cross-site flows pay the WAN latency and share
    the circuit's capacity.  Hosts split contiguously across sites, so
    the driver and the first workers share site 0.
    """
    if sites < 2:
        raise SimulationError(f"geo needs at least 2 sites, got {sites}")
    if wan_latency_s < 0:
        raise SimulationError(f"wan latency must be non-negative, got {wan_latency_s}")
    wan_bps = link.bandwidth_bps if wan_bandwidth_bps is None else wan_bandwidth_bps
    if wan_bps <= 0:
        raise SimulationError(f"wan bandwidth must be positive, got {wan_bps}")
    effective_sites = max(2, min(sites, host_count)) if host_count > 1 else 1
    per_site = math.ceil(host_count / effective_sites)
    switch = [host_count + site for site in range(effective_sites)]
    builder = _Builder()
    for host in range(host_count):
        builder.duplex(host, switch[host // per_site], link.bandwidth_bps, link.latency_s / 2.0)
    for a in range(effective_sites):
        for b in range(a + 1, effective_sites):
            builder.duplex(switch[a], switch[b], wan_bps, wan_latency_s)

    def router(source: int, destination: int):
        src_site, dst_site = source // per_site, destination // per_site
        up = builder.index[(source, switch[src_site])]
        down = builder.index[(switch[dst_site], destination)]
        if src_site == dst_site:
            return (up, down)
        return (up, builder.index[(switch[src_site], switch[dst_site])], down)

    return Topology(
        "geo",
        host_count,
        tuple(builder.links),
        router,
        params={
            "sites": effective_sites,
            "hosts_per_site": per_site,
            "wan_latency_s": wan_latency_s,
            "wan_bps": wan_bps,
        },
    )


# --------------------------------------------------------------------------
# Validation and construction from a scenario's ``backend.topology`` block.
# --------------------------------------------------------------------------


def _check_int(section: Mapping[str, object], key: str, minimum: int) -> None:
    value = section[key]
    if isinstance(value, bool) or not isinstance(value, int) or value < minimum:
        raise ScenarioError(
            f"backend.topology.{key} must be an integer >= {minimum}, got {value!r}"
        )


def _check_number(
    section: Mapping[str, object], key: str, positive: bool = True
) -> None:
    value = section[key]
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ScenarioError(f"backend.topology.{key} must be a number, got {value!r}")
    number = float(value)
    if not math.isfinite(number):
        raise ScenarioError(f"backend.topology.{key} must be finite, got {number}")
    if positive and number <= 0:
        raise ScenarioError(f"backend.topology.{key} must be positive, got {number}")
    if not positive and number < 0:
        raise ScenarioError(f"backend.topology.{key} must be non-negative, got {number}")


def validate_topology_options(section: Mapping[str, object]) -> None:
    """Shape and range checks of a ``backend.topology`` block.

    The single authority for what a topology block may contain: the spec
    parser applies it to declared blocks, and the scenario compiler
    re-applies it after sweep-axis values (``oversubscription_ratio``,
    ``wan_latency_ms``) merge in, so the two layers can never disagree.
    """
    kind = section.get("kind", "single-switch")
    if kind not in TOPOLOGY_KINDS:
        near = difflib.get_close_matches(str(kind), TOPOLOGY_KINDS, n=3, cutoff=0.4)
        hint = f" — did you mean {', '.join(near)}?" if near else ""
        raise ScenarioError(
            f"unknown topology kind {kind!r}{hint}"
            f" (known kinds: {', '.join(TOPOLOGY_KINDS)})"
        )
    allowed = ("kind", "tcp") + TOPOLOGY_KIND_OPTIONS[kind]
    unknown = sorted(set(section) - set(allowed))
    if unknown:
        raise ScenarioError(
            f"unknown backend.topology keys {unknown} for kind {kind!r};"
            f" allowed: {sorted(allowed)}"
        )
    if "k" in section:
        _check_int(section, "k", minimum=2)
        if int(section["k"]) % 2:  # type: ignore[call-overload]
            raise ScenarioError(
                f"backend.topology.k must be even, got {section['k']}"
            )
    if "racks" in section:
        _check_int(section, "racks", minimum=1)
    if "sites" in section:
        _check_int(section, "sites", minimum=2)
    if "oversubscription_ratio" in section:
        _check_number(section, "oversubscription_ratio", positive=True)
    if "wan_latency_ms" in section:
        _check_number(section, "wan_latency_ms", positive=False)
    if "wan_link" in section:
        wan_link = section["wan_link"]
        if not isinstance(wan_link, str) or not wan_link:
            raise ScenarioError(
                "backend.topology.wan_link must be a catalog link slug string,"
                f" got {wan_link!r}"
            )
    if "tcp" in section:
        tcp = section["tcp"]
        if not isinstance(tcp, Mapping):
            raise ScenarioError(
                f"backend.topology.tcp must be a mapping, got {tcp!r}"
            )
        unknown_tcp = sorted(set(tcp) - {"loss_rate", "mss_bytes"})
        if unknown_tcp:
            raise ScenarioError(
                f"unknown backend.topology.tcp keys {unknown_tcp};"
                " allowed: ['loss_rate', 'mss_bytes']"
            )
        if "loss_rate" not in tcp:
            raise ScenarioError("backend.topology.tcp requires 'loss_rate'")
        loss = tcp["loss_rate"]
        if (
            isinstance(loss, bool)
            or not isinstance(loss, (int, float))
            or not math.isfinite(float(loss))
            or not 0.0 <= float(loss) < 1.0
        ):
            raise ScenarioError(
                f"backend.topology.tcp.loss_rate must be in [0, 1), got {loss!r}"
            )
        if "mss_bytes" in tcp:
            mss = tcp["mss_bytes"]
            if isinstance(mss, bool) or not isinstance(mss, int) or mss < 1:
                raise ScenarioError(
                    f"backend.topology.tcp.mss_bytes must be a positive integer,"
                    f" got {mss!r}"
                )


def build_topology(
    kind: str, host_count: int, link: LinkSpec, options: Mapping[str, object]
) -> Topology:
    """Construct the named topology for ``host_count`` hosts.

    ``link`` is the scenario's (resolved) host NIC; ``options`` is the
    validated ``backend.topology`` block minus ``kind``/``tcp``.  The
    ``geo`` WAN circuit resolves through the hardware catalog so its
    capacity rides the same slugs as every other link in a spec.
    """
    if kind == "single-switch":
        return single_switch(host_count, link)
    if kind == "oversubscribed-racks":
        return oversubscribed_racks(
            host_count,
            link,
            racks=int(options.get("racks", 2)),
            oversubscription_ratio=float(options.get("oversubscription_ratio", 1.0)),
        )
    if kind == "fat-tree":
        k = options.get("k")
        return fat_tree(host_count, link, k=None if k is None else int(k))
    if kind == "torus-2d":
        return torus_2d(host_count, link)
    if kind == "geo":
        from repro.hardware import catalog

        wan = catalog.lookup(str(options.get("wan_link", DEFAULT_WAN_LINK)))
        if not isinstance(wan, LinkSpec):
            raise SimulationError(
                f"wan_link {options.get('wan_link')!r} is not a network link"
            )
        latency_ms = options.get("wan_latency_ms")
        wan_latency_s = wan.latency_s if latency_ms is None else float(latency_ms) / 1e3
        return geo(
            host_count,
            link,
            sites=int(options.get("sites", 2)),
            wan_latency_s=wan_latency_s,
            wan_bandwidth_bps=wan.bandwidth_bps,
        )
    raise SimulationError(
        f"unknown topology kind {kind!r}; known: {', '.join(TOPOLOGY_KINDS)}"
    )
