"""The BSP superstep engine over an explicit topology.

Mirrors :class:`~repro.simulate.bsp.BSPEngine` phase for phase —
framework overhead, torrent broadcast, jittered compute, aggregation
collective — but routes every transfer through the flow-level
:class:`~repro.net.flows.FlowNetwork` instead of the endpoint-contention
network.  The superstep structure, node numbering (0 is the driver),
jitter stream (``stream(seed, "bsp-jitter")``) and the returned
:class:`~repro.simulate.bsp.BSPReport` are identical, so the two
engines are drop-in comparable: on a ``single-switch`` topology their
schedules coincide and the differential harness asserts it.
"""

from __future__ import annotations

from repro.core.errors import SimulationError
from repro.hardware.specs import NodeSpec
from repro.net import collectives
from repro.net.flows import FlowNetwork, FlowRequest, TcpThroughputModel
from repro.net.topology import Topology
from repro.simulate.bsp import BSPReport, SuperstepPlan
from repro.simulate.overhead import NO_OVERHEAD, FrameworkOverhead
from repro.simulate.rng import JitterModel, LogNormalJitter, stream
from repro.simulate.trace import ComputeRecord, Trace


class FlowBSPEngine:
    """Simulates BSP supersteps on a cluster with an explicit fabric."""

    def __init__(
        self,
        node: NodeSpec,
        topology: Topology,
        workers: int,
        overhead: FrameworkOverhead = NO_OVERHEAD,
        jitter: JitterModel = LogNormalJitter(0.0),
        seed: int = 0,
        tcp: TcpThroughputModel | None = None,
        keep_trace: bool = True,
    ):
        if workers < 1:
            raise SimulationError(f"workers must be >= 1, got {workers}")
        if topology.host_count != workers + 1:
            raise SimulationError(
                f"topology holds {topology.host_count} hosts;"
                f" workers={workers} needs {workers + 1} (driver + workers)"
            )
        self.node = node
        self.topology = topology
        self.workers = workers
        self.overhead = overhead
        self.jitter = jitter
        self.seed = seed
        self.trace = Trace() if keep_trace else None
        self.network = FlowNetwork(topology, tcp=tcp)
        self._jitter_rng = stream(seed, "bsp-jitter")

    @property
    def driver(self) -> int:
        """Node id of the dedicated driver."""
        return 0

    @property
    def worker_ids(self) -> list[int]:
        """Node ids of the workers."""
        return list(range(1, self.workers + 1))

    def run(self, plan: SuperstepPlan, iterations: int) -> BSPReport:
        """Execute ``iterations`` supersteps of ``plan``."""
        if iterations < 1:
            raise SimulationError(f"iterations must be >= 1, got {iterations}")
        loads = plan.loads(self.workers)
        iteration_seconds: list[float] = []
        compute_spans: list[float] = []
        communication_spans: list[float] = []
        barrier = 0.0
        for _iteration in range(iterations):
            # Flows of past supersteps are fully drained at the barrier;
            # dropping their reservations keeps the ledger small.
            self.network.advance(barrier)
            end, compute_span = self._superstep(plan, loads, barrier)
            iteration_seconds.append(end - barrier)
            compute_spans.append(compute_span)
            communication_spans.append(max(0.0, (end - barrier) - compute_span))
            barrier = end
        return BSPReport(
            workers=self.workers,
            iteration_seconds=iteration_seconds,
            trace=self.trace if self.trace is not None else Trace(),
            compute_spans=compute_spans,
            communication_spans=communication_spans,
        )

    def _superstep(
        self, plan: SuperstepPlan, loads: list[float], barrier: float
    ) -> tuple[float, float]:
        dispatch = barrier + self.overhead.delay(self.workers)

        # Phase 1: parameter broadcast (torrent-like).
        if plan.broadcast_bits > 0:
            holds_at = collectives.binomial_broadcast(
                self.network,
                root=self.driver,
                root_ready=dispatch,
                targets=self.worker_ids,
                bits=plan.broadcast_bits,
                tag="broadcast",
            )
            task_start = {w: holds_at[w] for w in self.worker_ids}
        else:
            task_start = {w: dispatch for w in self.worker_ids}

        # Phase 2: per-worker computation with straggler jitter.
        ready: dict[int, float] = {}
        first_start = min(task_start.values())
        last_finish = first_start
        for worker, operations in zip(self.worker_ids, loads):
            duration = self.node.seconds_for(operations) * self.jitter.sample(self._jitter_rng)
            start = task_start[worker]
            finish = start + duration
            ready[worker] = finish
            last_finish = max(last_finish, finish)
            if self.trace is not None:
                self.trace.record_compute(
                    ComputeRecord(
                        node=worker, operations=operations, start=start, end=finish, tag="task"
                    )
                )
        compute_span = last_finish - barrier

        # Phase 3: aggregation.
        if plan.aggregate_bits <= 0 or plan.aggregation == "none":
            return last_finish, compute_span
        if plan.aggregation == "linear":
            end = collectives.linear_gather(
                self.network, ready, self.driver, plan.aggregate_bits, tag="aggregate"
            )
        elif plan.aggregation == "gather_root":
            end = collectives.linear_gather(
                self.network, ready, min(ready), plan.aggregate_bits, tag="aggregate"
            )
        elif plan.aggregation == "tree_root":
            _root, end = collectives.tree_reduce(
                self.network, ready, plan.aggregate_bits, tag="aggregate"
            )
        elif plan.aggregation == "tree":
            root, root_time = collectives.tree_reduce(
                self.network, ready, plan.aggregate_bits, tag="aggregate"
            )
            [outcome] = self.network.batch(
                [
                    FlowRequest(
                        root,
                        self.driver,
                        plan.aggregate_bits,
                        not_before=root_time,
                        tag="aggregate",
                    )
                ]
            )
            end = outcome.end
        elif plan.aggregation == "two_wave":
            end = collectives.two_wave_aggregate(
                self.network, ready, self.driver, plan.aggregate_bits, tag="aggregate"
            )
        elif plan.aggregation == "ring":
            finish_times = collectives.ring_allreduce(
                self.network, ready, plan.aggregate_bits, tag="aggregate"
            )
            end = max(finish_times.values())
        else:  # pragma: no cover - guarded in SuperstepPlan
            raise SimulationError(f"unhandled aggregation {plan.aggregation!r}")
        return end, compute_span
