"""The network evaluation backend: topology as a scenario axis.

Implements :class:`~repro.core.backend.EvaluationBackend` by replaying
each compiled workload's BSP transfer schedule through the flow-level
:class:`~repro.net.engine.FlowBSPEngine` over an explicit cluster
topology.  Everything else matches :class:`~repro.simulate.backend.
SimulatedBackend` — per-point seeds derive from the target's content
identity and the worker count (never from process placement), so
network sweeps are bit-identical serial or pooled — which is what makes
the two backends differentially comparable on ``single-switch``.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping
from dataclasses import dataclass, field
from typing import ClassVar

import numpy as np

from repro.core.backend import EvaluationBackend, EvaluationTarget
from repro.core.errors import SimulationError
from repro.net.engine import FlowBSPEngine
from repro.net.flows import TcpThroughputModel
from repro.net.topology import TOPOLOGY_KINDS, build_topology
from repro.obs.metrics import get_registry
from repro.simulate.overhead import NO_OVERHEAD, FrameworkOverhead
from repro.simulate.rng import StragglerJitter, derive_seed

_FLOW_ROUNDS = get_registry().counter(
    "repro_backends_flow_rounds_total",
    "Max-min sharing rounds solved by network-backend engines",
)
_FLOWS = get_registry().counter(
    "repro_backends_flows_total",
    "Individual flows routed by network-backend engines",
)


def topology_items(options: Mapping[str, object]) -> tuple[tuple[str, object], ...]:
    """Canonical hashable form of a topology options mapping."""
    items = []
    for key, value in sorted(options.items()):
        if isinstance(value, Mapping):
            value = tuple(sorted(value.items()))
        items.append((key, value))
    return tuple(items)


@dataclass(frozen=True)
class NetworkBackend(EvaluationBackend):
    """Evaluate targets on the flow-level network simulator.

    Parameters
    ----------
    topology_kind:
        One of :data:`~repro.net.topology.TOPOLOGY_KINDS`; the fabric a
        per-point topology is built over (``workers + 1`` hosts).
    topology_options:
        Kind-specific options as a sorted item tuple (hashable, like
        every other frozen backend field); build with
        :func:`topology_items`.  May include a ``tcp`` sub-tuple for the
        analytic TCP throughput cap.
    iterations, seed, jitter_sigma, straggler_fraction,
    straggler_slowdown, overhead:
        Exactly as on :class:`~repro.simulate.backend.SimulatedBackend`.
    """

    topology_kind: str = "single-switch"
    topology_options: tuple[tuple[str, object], ...] = ()
    iterations: int = 3
    seed: int = 0
    jitter_sigma: float = 0.0
    straggler_fraction: float = 0.0
    straggler_slowdown: float = 2.0
    overhead: FrameworkOverhead = field(default=NO_OVERHEAD)

    name: ClassVar[str] = "network"

    def __post_init__(self) -> None:
        if self.topology_kind not in TOPOLOGY_KINDS:
            raise SimulationError(
                f"unknown topology kind {self.topology_kind!r};"
                f" choose from {TOPOLOGY_KINDS}"
            )
        if self.iterations < 1:
            raise SimulationError(f"iterations must be >= 1, got {self.iterations}")
        if self.seed < 0:
            raise SimulationError(f"seed must be non-negative, got {self.seed}")
        self.jitter()
        self.tcp_model()

    def jitter(self) -> StragglerJitter:
        """The task-time noise model these settings describe."""
        return StragglerJitter(
            sigma=self.jitter_sigma,
            straggler_fraction=self.straggler_fraction,
            straggler_slowdown=self.straggler_slowdown,
        )

    def options_dict(self) -> dict[str, object]:
        """The topology options as a plain mapping (sans ``kind``/``tcp``)."""
        return {
            key: value
            for key, value in self.topology_options
            if key not in ("kind", "tcp")
        }

    def tcp_model(self) -> TcpThroughputModel | None:
        """The per-flow TCP cap, if the topology block configured one."""
        for key, value in self.topology_options:
            if key == "tcp":
                tcp = dict(value)  # type: ignore[call-overload]
                return TcpThroughputModel(
                    loss_rate=float(tcp["loss_rate"]),
                    mss_bytes=int(tcp.get("mss_bytes", 1460)),
                )
        return None

    def evaluate(self, target: EvaluationTarget, workers: Iterable[int]) -> np.ndarray:
        workload = target.workload
        if workload is None:
            raise SimulationError(
                f"target {target.label or target.model!r} has no BSP-expressible"
                " simulation workload; use the analytic backend"
            )
        jitter = self.jitter()
        tcp = self.tcp_model()
        options = self.options_dict()
        times = []
        for n in (int(value) for value in workers):
            topology = build_topology(self.topology_kind, n + 1, workload.link, options)
            engine = FlowBSPEngine(
                node=workload.node,
                topology=topology,
                workers=n,
                overhead=self.overhead,
                jitter=jitter,
                seed=derive_seed(self.seed, "network-backend", target.key, f"n={n}"),
                tcp=tcp,
                keep_trace=False,
            )
            report = engine.run(workload.plan_for(n), self.iterations)
            _FLOW_ROUNDS.inc(engine.network.batches_solved)
            _FLOWS.inc(engine.network.flows_solved)
            seconds = report.mean_iteration_seconds * workload.model_iterations
            if workload.amortized:
                seconds /= n
            times.append(seconds)
        return np.asarray(times, dtype=float)

    def config(self) -> dict:
        topology: dict[str, object] = {"kind": self.topology_kind}
        for key, value in self.topology_options:
            if key == "kind":
                continue
            topology[key] = dict(value) if key == "tcp" else value  # type: ignore[call-overload]
        return {
            "backend": self.name,
            "topology": topology,
            "iterations": self.iterations,
            "seed": self.seed,
            "jitter_sigma": self.jitter_sigma,
            "straggler_fraction": self.straggler_fraction,
            "straggler_slowdown": self.straggler_slowdown,
            "overhead": {
                "superstep_seconds": self.overhead.superstep_seconds,
                "per_worker_seconds": self.overhead.per_worker_seconds,
            },
        }
