"""Flow-level network modeling: topologies, max-min flows, the backend.

The fourth evaluation backend.  Where :mod:`repro.simulate` models the
paper's single-switch testbed (endpoint contention only), this package
makes the fabric explicit: capacitated link graphs
(:mod:`repro.net.topology`), a progressive-filling max-min fair-share
solver (:mod:`repro.net.flows`), batched collective schedules
(:mod:`repro.net.collectives`), a topology-aware BSP engine
(:mod:`repro.net.engine`) and the :class:`NetworkBackend` that plugs it
all into scenarios, sweeps, the planner and the service.
"""

from repro.net.backend import NetworkBackend, topology_items
from repro.net.engine import FlowBSPEngine
from repro.net.flows import (
    Flow,
    FlowAllocation,
    FlowNetwork,
    FlowRequest,
    RateSegment,
    ReservationLedger,
    TcpThroughputModel,
    max_min_rates,
    solve_flows,
    tcp_throughput_cap_bps,
)
from repro.net.topology import (
    DEFAULT_WAN_LINK,
    TOPOLOGY_KIND_OPTIONS,
    TOPOLOGY_KINDS,
    TOPOLOGY_SWEEP_AXES,
    Link,
    Topology,
    build_topology,
    fat_tree,
    fat_tree_arity,
    fat_tree_capacity,
    geo,
    oversubscribed_racks,
    single_switch,
    torus_2d,
    validate_topology_options,
)

__all__ = [
    "DEFAULT_WAN_LINK",
    "Flow",
    "FlowAllocation",
    "FlowBSPEngine",
    "FlowNetwork",
    "FlowRequest",
    "Link",
    "NetworkBackend",
    "RateSegment",
    "ReservationLedger",
    "TOPOLOGY_KINDS",
    "TOPOLOGY_KIND_OPTIONS",
    "TOPOLOGY_SWEEP_AXES",
    "TcpThroughputModel",
    "Topology",
    "build_topology",
    "fat_tree",
    "fat_tree_arity",
    "fat_tree_capacity",
    "geo",
    "max_min_rates",
    "oversubscribed_racks",
    "single_switch",
    "solve_flows",
    "tcp_throughput_cap_bps",
    "topology_items",
    "torus_2d",
    "validate_topology_options",
]
