"""Progressive-filling max-min fair-share flow solver.

The endpoint :class:`~repro.simulate.network.Network` serialises
transfers on NIC ports.  On a link *graph*, concurrent flows instead
*share* the links they traverse; the classic steady-state abstraction is
max-min fairness: rates are raised together until some link saturates,
flows through that bottleneck freeze at their fair share, and the
remaining flows keep filling the residual capacity (progressive
filling).  :func:`solve_flows` runs that allocation inside a
discrete-event loop — rates re-solve whenever a flow arrives, a flow
finishes, or a capacity reservation changes — so each flow ends up with
a piecewise-constant rate profile and an exact completion time.

Two modelling choices keep the solver composable with a BSP engine that
issues transfers round by round:

* **Finalised allocations.**  Once a batch of flows is solved, its rate
  profiles are committed to a :class:`ReservationLedger` as reserved
  capacity.  Later batches share only the *residual* — they can never
  retroactively slow a flow whose completion time has already been
  returned.  Within a batch, sharing is true max-min; across batches it
  is FIFO priority, which is exactly how the endpoint network resolves
  cross-phase port conflicts (earlier requests occupy the port first).
* **Latency once per flow.**  A flow's delivery time is its transmission
  finish plus the route's propagation delay — the payload pipelines
  through the path rather than paying store-and-forward latency per
  transfer as the serialised model does.

An optional analytic TCP cap (the csa00 / Mathis et al. square-root
model, ``rate <= MSS / (RTT * sqrt(2p/3))``) bounds each flow's rate by
what a loss rate ``p`` lets a TCP connection sustain over the route's
round-trip time.
"""

from __future__ import annotations

import math
from collections.abc import Mapping, Sequence
from dataclasses import dataclass, field

from repro.core.errors import SimulationError
from repro.simulate.network import TransferOutcome

#: Relative tolerance for "this flow's remaining bits are done" and for
#: bottleneck-share comparisons.  Purely a float-noise guard; all the
#: determinism comes from the fixed iteration orders below.
_REL_EPS = 1e-12


@dataclass(frozen=True)
class Flow:
    """One transfer request routed over the topology graph.

    ``route`` is a tuple of link indices; an empty route is a loop-back
    (or off-graph) flow that only its ``rate_cap_bps`` constrains.
    ``latency_s`` is the route's total propagation delay, added once to
    the transmission finish.
    """

    route: tuple[int, ...]
    bits: float
    not_before: float = 0.0
    latency_s: float = 0.0
    rate_cap_bps: float = math.inf
    tag: str = ""

    def __post_init__(self) -> None:
        if self.bits < 0:
            raise SimulationError(f"bits must be non-negative, got {self.bits}")
        if self.not_before < 0:
            raise SimulationError(f"not_before must be non-negative, got {self.not_before}")
        if self.latency_s < 0:
            raise SimulationError(f"latency_s must be non-negative, got {self.latency_s}")
        if not self.rate_cap_bps > 0:
            raise SimulationError(f"rate_cap_bps must be positive, got {self.rate_cap_bps}")


@dataclass(frozen=True)
class RateSegment:
    """A constant-rate stretch of a flow's transmission."""

    start: float
    end: float
    rate_bps: float


@dataclass(frozen=True)
class FlowAllocation:
    """What the solver assigned to one flow."""

    flow: Flow
    start: float  # first instant the flow transmits at a positive rate
    end: float  # delivery time: transmission finish + route latency
    segments: tuple[RateSegment, ...]

    @property
    def outcome(self) -> TransferOutcome:
        return TransferOutcome(start=self.start, end=self.end)


class ReservationLedger:
    """Time-indexed reserved capacity per link.

    Committed batches appear here as ``(start, end, rate)`` segments;
    :func:`solve_flows` subtracts the overlapping reservations from link
    capacity at each event time and treats segment boundaries as solver
    events (capacity steps).
    """

    def __init__(self) -> None:
        self._segments: dict[int, list[RateSegment]] = {}

    def reserve(self, link: int, segment: RateSegment) -> None:
        if segment.end <= segment.start or segment.rate_bps <= 0:
            return
        self._segments.setdefault(link, []).append(segment)

    def reserved_at(self, link: int, time: float) -> float:
        """Total reserved rate on ``link`` at ``time`` (bit/s)."""
        return sum(
            segment.rate_bps
            for segment in self._segments.get(link, ())
            if segment.start <= time < segment.end
        )

    def next_change_after(self, links: Sequence[int], time: float) -> float | None:
        """Earliest reservation boundary strictly after ``time``."""
        best: float | None = None
        for link in links:
            for segment in self._segments.get(link, ()):
                for bound in (segment.start, segment.end):
                    if bound > time and (best is None or bound < best):
                        best = bound
        return best

    def prune(self, time: float) -> None:
        """Drop segments that end at or before ``time`` (past barriers)."""
        for link in list(self._segments):
            kept = [s for s in self._segments[link] if s.end > time]
            if kept:
                self._segments[link] = kept
            else:
                del self._segments[link]


def max_min_rates(
    routes: Mapping[int, tuple[int, ...]],
    caps: Mapping[int, float],
    residual: Mapping[int, float],
) -> dict[int, float]:
    """One water-filling pass: instantaneous max-min rates.

    ``routes`` maps flow id -> link indices, ``caps`` flow id -> per-flow
    rate cap (may be ``inf``), ``residual`` link -> available capacity.
    Rates satisfy: no link carries more than its residual, no flow
    exceeds its cap, and no flow's rate can grow without shrinking an
    equal-or-slower flow (the max-min property).
    """
    rates: dict[int, float] = {}
    capacity = {link: max(0.0, residual.get(link, 0.0)) for link in set().union(*routes.values(), set())}
    unfrozen = sorted(routes)
    while unfrozen:
        counts: dict[int, int] = {}
        for flow in unfrozen:
            for link in routes[flow]:
                counts[link] = counts.get(link, 0) + 1
        share = min(
            (capacity[link] / counts[link] for link in sorted(counts)), default=math.inf
        )
        cap_floor = min(caps[flow] for flow in unfrozen)
        rate = min(share, cap_floor)
        if not math.isfinite(rate):
            # Only cap-free, link-free flows remain: unbounded rate.
            for flow in unfrozen:
                rates[flow] = math.inf
            break
        threshold = rate * (1.0 + _REL_EPS)
        bottlenecks = {
            link for link in counts if capacity[link] / counts[link] <= threshold
        }
        frozen = [
            flow
            for flow in unfrozen
            if caps[flow] <= threshold or any(link in bottlenecks for link in routes[flow])
        ]
        if not frozen:  # pragma: no cover - float-noise safety valve
            frozen = list(unfrozen)
        for flow in frozen:
            rates[flow] = min(rate, caps[flow])
            for link in routes[flow]:
                capacity[link] = max(0.0, capacity[link] - rates[flow])
        unfrozen = [flow for flow in unfrozen if flow not in set(frozen)]
    return rates


def solve_flows(
    flows: Sequence[Flow],
    capacity: Mapping[int, float],
    ledger: ReservationLedger | None = None,
) -> list[FlowAllocation]:
    """Allocate rates to ``flows`` over links of ``capacity``.

    Runs progressive filling inside an event loop: at every event time
    (flow arrival, flow finish, reservation boundary) the instantaneous
    max-min rates of the active flows are re-solved against the residual
    capacity ``capacity - ledger`` and held constant until the next
    event.  Results are returned in request order.  The ledger is *not*
    modified — committing the returned allocations is the caller's
    choice (see :class:`FlowNetwork <repro.net.flows>`-style wrappers).
    """
    count = len(flows)
    allocations: list[FlowAllocation | None] = [None] * count
    remaining = [flow.bits for flow in flows]
    segments: list[list[RateSegment]] = [[] for _ in range(count)]
    started: list[float | None] = [None] * count
    pending = set(range(count))

    # Zero-bit flows deliver instantly: no transmission, no reservation.
    for index, flow in enumerate(flows):
        if flow.bits == 0:
            allocations[index] = FlowAllocation(
                flow=flow,
                start=flow.not_before,
                end=flow.not_before + flow.latency_s,
                segments=(),
            )
            pending.discard(index)

    if pending:
        time = min(flows[index].not_before for index in pending)
    while pending:
        active = [index for index in pending if flows[index].not_before <= time]
        future = [index for index in pending if flows[index].not_before > time]
        next_arrival = min((flows[index].not_before for index in future), default=None)
        if not active:
            time = next_arrival  # type: ignore[assignment]  # future is non-empty here
            continue
        links = sorted({link for index in active for link in flows[index].route})
        residual = {
            link: capacity[link] - (ledger.reserved_at(link, time) if ledger else 0.0)
            for link in links
        }
        rates = max_min_rates(
            {index: flows[index].route for index in active},
            {index: flows[index].rate_cap_bps for index in active},
            residual,
        )
        candidates: list[float] = []
        if next_arrival is not None:
            candidates.append(next_arrival)
        if ledger is not None:
            change = ledger.next_change_after(links, time)
            if change is not None:
                candidates.append(change)
        finishing: list[tuple[float, int]] = []
        for index in active:
            rate = rates[index]
            if rate > 0:
                finish = time if math.isinf(rate) else time + remaining[index] / rate
                finishing.append((finish, index))
                candidates.append(finish)
        if not candidates:
            raise SimulationError(
                "flow solver stalled: active flows have zero rate and no"
                " future capacity change or arrival"
            )
        next_time = min(candidates)
        for index in active:
            rate = rates[index]
            if rate <= 0:
                continue
            if started[index] is None:
                started[index] = time
            if math.isinf(rate) or time + remaining[index] / rate <= time:
                # Infinite rate, or a residual transmission smaller than
                # one float ulp of the clock: neither can advance
                # ``time``, so deliver now (guarantees loop progress).
                remaining[index] = 0.0
            else:
                if next_time > time:
                    segments[index].append(RateSegment(time, next_time, rate))
                remaining[index] -= rate * (next_time - time)
            if remaining[index] <= flows[index].bits * _REL_EPS:
                remaining[index] = 0.0
                flow = flows[index]
                start = started[index]
                assert start is not None
                allocations[index] = FlowAllocation(
                    flow=flow,
                    start=start,
                    end=next_time + flow.latency_s,
                    segments=tuple(segments[index]),
                )
                pending.discard(index)
        time = next_time

    return [allocation for allocation in allocations if allocation is not None]


def tcp_throughput_cap_bps(
    rtt_s: float, loss_rate: float, mss_bytes: int = 1460
) -> float:
    """The csa00 / Mathis square-root TCP throughput bound, in bit/s.

    ``rate = (MSS * 8) / (RTT * sqrt(2p/3))``.  With zero loss or zero
    round-trip time the model imposes no bound (returns ``inf``).
    """
    if loss_rate < 0 or loss_rate >= 1:
        raise SimulationError(f"loss_rate must be in [0, 1), got {loss_rate}")
    if rtt_s < 0:
        raise SimulationError(f"rtt_s must be non-negative, got {rtt_s}")
    if mss_bytes < 1:
        raise SimulationError(f"mss_bytes must be >= 1, got {mss_bytes}")
    if loss_rate == 0 or rtt_s == 0:
        return math.inf
    return (mss_bytes * 8.0) / (rtt_s * math.sqrt(2.0 * loss_rate / 3.0))


@dataclass(frozen=True)
class TcpThroughputModel:
    """Per-flow analytic TCP cap applied by :class:`FlowNetwork`."""

    loss_rate: float
    mss_bytes: int = 1460

    def cap_bps(self, rtt_s: float) -> float:
        return tcp_throughput_cap_bps(rtt_s, self.loss_rate, self.mss_bytes)


@dataclass(frozen=True)
class FlowRequest:
    """One host-to-host transfer the BSP engine asks the network for."""

    source: int
    destination: int
    bits: float
    not_before: float = 0.0
    tag: str = ""


class FlowNetwork:
    """A topology plus a reservation ledger: the engine-facing surface.

    :meth:`batch` solves one dependency round of transfers with true
    max-min sharing among them, commits the resulting rate profiles as
    reservations, and returns :class:`TransferOutcome` objects in
    request order — the same contract the endpoint network's
    ``transfer`` gives, lifted to batches.
    """

    def __init__(self, topology, tcp: TcpThroughputModel | None = None):
        self.topology = topology
        self.tcp = tcp
        self.ledger = ReservationLedger()
        self._capacity = topology.capacities
        # Telemetry tallies, read by the network backend after a run.
        self.batches_solved = 0
        self.flows_solved = 0

    def reset(self) -> None:
        """Forget all reservations (new simulation epoch)."""
        self.ledger = ReservationLedger()

    def advance(self, time: float) -> None:
        """Drop reservations that ended at or before ``time``."""
        self.ledger.prune(time)

    def batch(self, requests: Sequence[FlowRequest]) -> list[TransferOutcome]:
        """Solve one round of concurrent transfers; returns outcomes in order."""
        outcomes: list[TransferOutcome | None] = [None] * len(requests)
        flows: list[Flow] = []
        flow_slots: list[int] = []
        for slot, request in enumerate(requests):
            if request.bits < 0:
                raise SimulationError(f"bits must be non-negative, got {request.bits}")
            if request.not_before < 0:
                raise SimulationError(
                    f"not_before must be non-negative, got {request.not_before}"
                )
            if request.source == request.destination:
                outcomes[slot] = TransferOutcome(
                    start=request.not_before, end=request.not_before
                )
                continue
            route = self.topology.route(request.source, request.destination)
            latency = self.topology.route_latency(request.source, request.destination)
            cap = math.inf
            if self.tcp is not None:
                cap = self.tcp.cap_bps(2.0 * latency)
            flows.append(
                Flow(
                    route=route,
                    bits=request.bits,
                    not_before=request.not_before,
                    latency_s=latency,
                    rate_cap_bps=cap,
                    tag=request.tag,
                )
            )
            flow_slots.append(slot)
        self.batches_solved += 1
        self.flows_solved += len(flows)
        if flows:
            allocations = solve_flows(flows, self._capacity, self.ledger)
            for allocation, slot in zip(allocations, flow_slots):
                for link in allocation.flow.route:
                    for segment in allocation.segments:
                        self.ledger.reserve(link, segment)
                outcomes[slot] = allocation.outcome
        return [outcome for outcome in outcomes if outcome is not None]
