"""The Spark-like runtime of the paper's Figure 2 experiment.

Reconstructs the paper's testbed in the simulator: Xeon E3-1240 workers
(double precision, 80 % of peak), a dedicated driver, 1 Gbit/s Ethernet,
torrent parameter broadcast, two-wave ``ceil(sqrt(n))`` gradient
aggregation, JVM-ish scheduling overhead and straggler jitter.

The Figure 2 *driver* now routes through the pluggable evaluation
backends (the same configuration lives in ``builtin/figure2.json``'s
``backend.simulation`` block); this module remains the library-level
entry point for driving the Spark-like testbed directly, as
``examples/deep_learning_spark.py`` does.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.core.model import MeasuredModel
from repro.core.units import BITS_DOUBLE_PRECISION
from repro.distributed.gradient_descent import GDWorkload, simulate_gd_iterations
from repro.hardware.catalog import gigabit_ethernet, xeon_e3_1240
from repro.hardware.specs import ClusterSpec
from repro.nn.architectures import mnist_fc
from repro.nn.flops import DENSE_TRAINING_OPERATIONS_PER_WEIGHT
from repro.simulate.cluster import SimulatedCluster
from repro.simulate.overhead import SPARK_LIKE_OVERHEAD
from repro.simulate.rng import LogNormalJitter

#: The paper's Spark batch size: the full MNIST training set.
SPARK_BATCH_SIZE = 60000

#: Straggler severity observed on small JVM clusters; drives the gap
#: between the smooth model curve and the "experimental" markers.
SPARK_JITTER_SIGMA = 0.06


def spark_cluster(workers: int = 16, seed: int = 0) -> SimulatedCluster:
    """The paper's testbed: dedicated master + Xeon workers on 1 GbE."""
    spec = ClusterSpec(
        node=xeon_e3_1240(precision="double"),
        link=gigabit_ethernet(),
        workers=workers,
        dedicated_master=True,
    )
    return SimulatedCluster(
        spec=spec,
        overhead=SPARK_LIKE_OVERHEAD,
        jitter=LogNormalJitter(SPARK_JITTER_SIGMA),
        seed=seed,
    )


def mnist_fc_workload() -> GDWorkload:
    """The Figure 2 workload: 6W ops/sample, 64-bit parameters, S = 60000."""
    spec = mnist_fc()
    weights = spec.total_weights
    return GDWorkload(
        operations_per_sample=DENSE_TRAINING_OPERATIONS_PER_WEIGHT * weights,
        parameter_bits=BITS_DOUBLE_PRECISION * weights,
        batch_size=SPARK_BATCH_SIZE,
    )


def measure_fc_iterations(
    workers_grid: Iterable[int],
    iterations: int = 5,
    seed: int = 0,
) -> MeasuredModel:
    """Simulated per-iteration times for the Figure 2 sweep."""
    grid = list(workers_grid)
    cluster = spark_cluster(workers=max(grid), seed=seed)
    return simulate_gd_iterations(
        cluster,
        mnist_fc_workload(),
        grid,
        iterations=iterations,
        weak_scaling=False,
        aggregation="two_wave",
    )
