"""Data-parallel gradient descent: functional correctness + timing runs.

Two layers:

* :func:`data_parallel_gradient` / :func:`data_parallel_train_step` run
  *real* data-parallel batch GD on a real network: every logical worker
  computes the gradient of its shard, the driver combines them weighted
  by shard size.  The tests pin the key invariant — the combined gradient
  equals the single-node full-batch gradient — which is what makes the
  paper's "computation is perfectly data parallel" assumption valid.
* :func:`simulate_gd_iterations` times the same superstep on the
  discrete-event cluster (broadcast, compute, aggregate) to produce the
  "experimental" points of Figures 2 and 3.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass

import numpy as np

from repro.core.errors import SimulationError, TrainingError
from repro.core.model import MeasuredModel
from repro.nn.data import Dataset
from repro.nn.losses import Loss
from repro.nn.network import Sequential
from repro.simulate.bsp import SuperstepPlan
from repro.simulate.cluster import SimulatedCluster


def data_parallel_gradient(
    network: Sequential, dataset: Dataset, loss: Loss, workers: int
) -> tuple[float, list[np.ndarray]]:
    """Gradient of the full batch, computed shard-by-shard and combined.

    Mimics the paper's data-parallel scheme: "each node computes the
    gradient in parallel using a part of the batch.  Then the results are
    collected to the master node."  Per-shard mean gradients are combined
    weighted by shard sizes, which reproduces the full-batch mean exactly.
    Returns ``(weighted mean loss, combined gradients)``.
    """
    if workers < 1:
        raise TrainingError(f"workers must be >= 1, got {workers}")
    if dataset.size < workers:
        raise TrainingError(f"{dataset.size} samples cannot feed {workers} workers")
    combined: list[np.ndarray] | None = None
    total_loss = 0.0
    for worker in range(workers):
        shard = dataset.shard(worker, workers)
        value, gradients = network.loss_and_gradients(shard.inputs, shard.targets, loss)
        weight = shard.size / dataset.size
        total_loss += value * weight
        if combined is None:
            combined = [g * weight for g in gradients]
        else:
            for accumulator, gradient in zip(combined, gradients):
                accumulator += gradient * weight
    assert combined is not None
    return total_loss, combined


def data_parallel_train_step(
    network: Sequential,
    dataset: Dataset,
    loss: Loss,
    workers: int,
    learning_rate: float,
) -> float:
    """One full data-parallel GD step (gradient + master update).

    Returns the batch loss before the update.
    """
    if learning_rate <= 0:
        raise TrainingError(f"learning_rate must be positive, got {learning_rate}")
    value, gradients = data_parallel_gradient(network, dataset, loss, workers)
    for parameter, gradient in zip(network.parameters(), gradients):
        parameter -= learning_rate * gradient
    return value


@dataclass(frozen=True)
class GDWorkload:
    """The timing-relevant description of one gradient-descent iteration.

    ``operations_per_sample`` is the paper's ``C`` (e.g. ``6 W`` for a
    fully-connected network); ``parameter_bits`` is ``32 W`` or ``64 W``.
    """

    operations_per_sample: float
    parameter_bits: float
    batch_size: int

    def __post_init__(self) -> None:
        if self.operations_per_sample <= 0:
            raise SimulationError(
                f"operations_per_sample must be positive, got {self.operations_per_sample}"
            )
        if self.parameter_bits <= 0:
            raise SimulationError(f"parameter_bits must be positive, got {self.parameter_bits}")
        if self.batch_size < 1:
            raise SimulationError(f"batch_size must be >= 1, got {self.batch_size}")

    def plan_strong_scaling(self, workers: int, aggregation: str = "two_wave") -> SuperstepPlan:
        """The batch is fixed and split across workers (Figure 2)."""
        total_operations = self.operations_per_sample * self.batch_size
        return SuperstepPlan(
            operations_per_worker=total_operations / workers,
            broadcast_bits=self.parameter_bits,
            aggregate_bits=self.parameter_bits,
            aggregation=aggregation,
        )

    def plan_weak_scaling(self, aggregation: str = "tree") -> SuperstepPlan:
        """Every worker keeps a full batch (Figure 3's regime)."""
        return SuperstepPlan(
            operations_per_worker=self.operations_per_sample * self.batch_size,
            broadcast_bits=self.parameter_bits,
            aggregate_bits=self.parameter_bits,
            aggregation=aggregation,
        )


def simulate_gd_iterations(
    cluster: SimulatedCluster,
    workload: GDWorkload,
    workers_grid: Iterable[int],
    iterations: int = 5,
    weak_scaling: bool = False,
    aggregation: str | None = None,
) -> MeasuredModel:
    """Measure mean iteration time across a worker-count sweep.

    Strong scaling splits ``workload.batch_size`` across workers (the
    Spark experiment of Figure 2); weak scaling gives each worker the
    whole batch (the TensorFlow experiment of Figure 3).
    """
    if aggregation is None:
        aggregation = "tree" if weak_scaling else "two_wave"

    def plan_for(workers: int) -> SuperstepPlan:
        if weak_scaling:
            return workload.plan_weak_scaling(aggregation=aggregation)
        return workload.plan_strong_scaling(workers, aggregation=aggregation)

    return cluster.measure_iteration_seconds(plan_for, workers_grid, iterations=iterations)


def per_instance_seconds(measured: MeasuredModel, batch_size: int) -> MeasuredModel:
    """Convert weak-scaling iteration times to time-per-training-instance.

    With ``n`` workers each holding ``batch_size`` samples, one iteration
    processes ``batch_size * n`` instances — the quantity Figure 3 plots.
    """
    if batch_size < 1:
        raise SimulationError(f"batch_size must be >= 1, got {batch_size}")
    pairs = []
    for workers in measured.workers:
        pairs.append((workers, measured.time(workers) / (batch_size * workers)))
    return MeasuredModel.from_pairs(pairs)
