"""The TensorFlow-like GPU runtime of the paper's Figure 3 experiment.

Chen et al. trained Inception v3 with synchronous mini-batch SGD on
nVidia K40 workers: every worker holds a fixed batch of 128 images, so
adding workers grows the effective batch — weak scaling.  The paper
models the gradient exchange logarithmically (``2 * (32W/B) * log n``);
the simulator realises that with binomial broadcast down and tree
aggregation up, plus a light in-process framework overhead.

The Figure 3 *driver* now routes through the pluggable evaluation
backends (the same configuration lives in ``builtin/figure3.json``'s
``backend.simulation`` block); this module remains the library-level
entry point for driving the TensorFlow-like testbed directly, as
``examples/weak_scaling_minibatch.py`` does.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.core.model import MeasuredModel
from repro.core.units import BITS_SINGLE_PRECISION
from repro.distributed.gradient_descent import (
    GDWorkload,
    per_instance_seconds,
    simulate_gd_iterations,
)
from repro.hardware.catalog import gigabit_ethernet, nvidia_k40
from repro.hardware.specs import ClusterSpec
from repro.nn.architectures import inception_v3
from repro.nn.flops import training_operations
from repro.simulate.cluster import SimulatedCluster
from repro.simulate.overhead import TENSORFLOW_LIKE_OVERHEAD
from repro.simulate.rng import LogNormalJitter

#: Chen et al.'s per-worker mini-batch ("a typical choice for one worker").
WORKER_BATCH_SIZE = 128

#: GPU kernels are much steadier than JVM tasks.
TENSORFLOW_JITTER_SIGMA = 0.01

#: The paper uses the published round numbers (W = 25e6, C = 3 * 5e9)
#: rather than exact layer sums; we honour that here so the experiment
#: and model quote identical inputs.
PAPER_INCEPTION_WEIGHTS = 25e6
PAPER_INCEPTION_FORWARD = 5e9


def tensorflow_cluster(workers: int = 200, seed: int = 0) -> SimulatedCluster:
    """Chen et al.'s testbed: K40 GPUs (50 % of peak) on 1 Gbit/s links."""
    spec = ClusterSpec(
        node=nvidia_k40(),
        link=gigabit_ethernet(),
        workers=workers,
        dedicated_master=True,
    )
    return SimulatedCluster(
        spec=spec,
        overhead=TENSORFLOW_LIKE_OVERHEAD,
        jitter=LogNormalJitter(TENSORFLOW_JITTER_SIGMA),
        seed=seed,
    )


def inception_workload(use_paper_constants: bool = True) -> GDWorkload:
    """The Figure 3 workload: C = 3 * 5e9 per sample, 32-bit parameters.

    With ``use_paper_constants=False`` the exact layer-counted values of
    our Inception v3 spec are used instead (about 14 % higher compute).
    """
    if use_paper_constants:
        weights = PAPER_INCEPTION_WEIGHTS
        forward = PAPER_INCEPTION_FORWARD
    else:
        spec = inception_v3()
        weights = float(spec.total_weights)
        forward = float(spec.forward_madds)
    return GDWorkload(
        operations_per_sample=training_operations(forward),
        parameter_bits=BITS_SINGLE_PRECISION * weights,
        batch_size=WORKER_BATCH_SIZE,
    )


def measure_inception_per_instance(
    workers_grid: Iterable[int],
    iterations: int = 3,
    seed: int = 0,
    use_paper_constants: bool = True,
) -> MeasuredModel:
    """Simulated per-training-instance times for the Figure 3 sweep."""
    grid = list(workers_grid)
    cluster = tensorflow_cluster(workers=max(grid), seed=seed)
    iteration_times = simulate_gd_iterations(
        cluster,
        inception_workload(use_paper_constants),
        grid,
        iterations=iterations,
        weak_scaling=True,
        aggregation="tree",
    )
    return per_instance_seconds(iteration_times, WORKER_BATCH_SIZE)
