"""Shared-memory distributed BP — the paper's Figure 4 experiment.

The paper ran its GraphLab BP implementation on an 80-core DL980;
communication happens through shared memory and is modelled as free, so
an iteration's time is the heaviest worker's message work plus the
engine's execution overhead (which the paper observed "taking over with
larger number of workers").

The experiment here: take a DNS-like graph, draw one concrete random
vertex assignment per worker count (not the Monte-Carlo *expectation* —
a single realisation, like a real run), and time supersteps as
``max_i(work_i) * c(S) / F_core + overhead(n)``.  Worker ``i``'s work is
its exact count of distinct incident edges (each edge is processed once
per owning worker), which is the quantity the paper's
``E_i = Ernd_i - Edup`` estimates.  The model therefore differs from the
experiment through (a) expectation-vs-realisation of the max statistic,
(b) the uniform-graph approximation inside ``Edup``, and (c) the engine
overhead — the same three gaps that separated the paper's theoretical
and experimental curves.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.core.errors import SimulationError
from repro.core.model import MeasuredModel
from repro.graph.graph import DegreeSequence, Graph
from repro.graph.montecarlo import expected_duplicate_edges
from repro.graph.partition import degree_loads, incident_edges_per_worker, random_partition
from repro.hardware.specs import SharedMemoryMachineSpec
from repro.models.belief_propagation import bp_cost_per_edge

#: Effective engine throughput: a real graph engine spends ~1 microsecond
#: per edge message (scheduling, cache misses, locks), far above the raw
#: 14 flops of c(2).  F cancels in every speedup, so this constant only
#: sets the absolute time scale against which overhead is calibrated.
GRAPHLAB_EFFECTIVE_FLOPS = 14e6

#: Engine overheads calibrated so the 16K-vertex study lands near the
#: paper's observed behaviour (speedup saturating then dipping past ~64
#: workers; MAPE in the paper's 20-26% band).
GRAPHLAB_SYNC_OVERHEAD_S = 2e-4
GRAPHLAB_PER_WORKER_OVERHEAD_S = 1e-5

#: Memory-bandwidth saturation: BP is memory-bound, and an 80-core
#: NUMA host cannot feed 80 cores at full rate.  This is the overhead
#: mechanism that remains visible even on the 100M-edge graph, where the
#: fixed per-superstep costs are negligible relative to compute.
GRAPHLAB_CONTENTION_SATURATION_CORES = 120.0


def graphlab_dl980() -> SharedMemoryMachineSpec:
    """The DL980 as seen by a GraphLab-like engine (effective constants)."""
    return SharedMemoryMachineSpec(
        name="HP ProLiant DL980 (GraphLab-effective)",
        cores=80,
        core_flops=GRAPHLAB_EFFECTIVE_FLOPS,
        sync_overhead_s=GRAPHLAB_SYNC_OVERHEAD_S,
        per_worker_overhead_s=GRAPHLAB_PER_WORKER_OVERHEAD_S,
        contention_saturation_cores=GRAPHLAB_CONTENTION_SATURATION_CORES,
    )


def iteration_seconds(
    max_edge_work: float,
    workers: int,
    machine: SharedMemoryMachineSpec,
    states: int = 2,
) -> float:
    """One BP superstep: the heaviest core's edge work plus engine overhead."""
    if max_edge_work < 0:
        raise SimulationError(f"max_edge_work must be non-negative, got {max_edge_work}")
    if workers < 1:
        raise SimulationError(f"workers must be >= 1, got {workers}")
    if workers > machine.cores:
        raise SimulationError(
            f"{workers} workers exceed the machine's {machine.cores} cores"
        )
    compute = (
        max_edge_work
        * bp_cost_per_edge(states)
        / machine.core_flops
        * machine.contention_factor(workers)
    )
    return compute + machine.overhead_seconds(workers)


def realized_max_edge_work(
    source: Graph | DegreeSequence, workers: int, seed: int = 0
) -> float:
    """The heaviest worker's edge count under one random assignment.

    With a materialised graph the count is exact (distinct incident
    edges).  With only a degree sequence (the paper's 16M-vertex scale)
    the realised degree-sum maximum is corrected by the expected
    duplicate count, mirroring the estimator's own correction.
    """
    if workers < 1:
        raise SimulationError(f"workers must be >= 1, got {workers}")
    if isinstance(source, Graph):
        if workers == 1:
            return float(source.edge_count)
        partition = random_partition(source.vertex_count, workers, seed=seed)
        return float(incident_edges_per_worker(source, partition).max())
    sequence = source
    if workers == 1:
        return float(sequence.edge_count)
    partition = random_partition(sequence.vertex_count, workers, seed=seed)
    loads = degree_loads(partition, sequence.degrees)
    duplicate = expected_duplicate_edges(sequence.vertex_count, sequence.edge_count, workers)
    return float(loads.max()) - duplicate


def measure_bp_iterations(
    source: Graph | DegreeSequence,
    workers_grid: Iterable[int],
    machine: SharedMemoryMachineSpec | None = None,
    states: int = 2,
    seed: int = 0,
) -> MeasuredModel:
    """Simulated BP iteration times across worker counts (Figure 4's data).

    For each worker count one concrete uniform-random vertex assignment
    is drawn (a fresh one per count, like re-launching the engine) and
    the superstep is timed off the realised worker loads.
    """
    if machine is None:
        machine = graphlab_dl980()
    pairs = []
    for index, workers in enumerate(workers_grid):
        workers = int(workers)
        work = realized_max_edge_work(source, workers, seed=seed + index)
        pairs.append((workers, iteration_seconds(work, workers, machine, states)))
    return MeasuredModel.from_pairs(pairs)
