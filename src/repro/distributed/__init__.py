"""Distributed executors: the simulated runtimes that produce 'experimental' data."""

from repro.distributed.gradient_descent import (
    GDWorkload,
    data_parallel_gradient,
    data_parallel_train_step,
    per_instance_seconds,
    simulate_gd_iterations,
)
from repro.distributed.graph_inference import (
    GRAPHLAB_EFFECTIVE_FLOPS,
    graphlab_dl980,
    iteration_seconds,
    measure_bp_iterations,
    realized_max_edge_work,
)
from repro.models.belief_propagation import bp_cost_per_edge
from repro.distributed.spark_like import (
    SPARK_BATCH_SIZE,
    SPARK_JITTER_SIGMA,
    measure_fc_iterations,
    mnist_fc_workload,
    spark_cluster,
)
from repro.distributed.tensorflow_like import (
    PAPER_INCEPTION_FORWARD,
    PAPER_INCEPTION_WEIGHTS,
    TENSORFLOW_JITTER_SIGMA,
    WORKER_BATCH_SIZE,
    inception_workload,
    measure_inception_per_instance,
    tensorflow_cluster,
)

__all__ = [
    "GDWorkload",
    "data_parallel_gradient",
    "data_parallel_train_step",
    "per_instance_seconds",
    "simulate_gd_iterations",
    "bp_cost_per_edge",
    "GRAPHLAB_EFFECTIVE_FLOPS",
    "graphlab_dl980",
    "iteration_seconds",
    "measure_bp_iterations",
    "realized_max_edge_work",
    "SPARK_BATCH_SIZE",
    "SPARK_JITTER_SIGMA",
    "measure_fc_iterations",
    "mnist_fc_workload",
    "spark_cluster",
    "PAPER_INCEPTION_FORWARD",
    "PAPER_INCEPTION_WEIGHTS",
    "TENSORFLOW_JITTER_SIGMA",
    "WORKER_BATCH_SIZE",
    "inception_workload",
    "measure_inception_per_instance",
    "tensorflow_cluster",
]
