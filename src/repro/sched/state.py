"""Per-worker shared state: ship a payload once, build its value once.

The old process-pool sweep repeated the full spec payload in *every*
task (``itertools.repeat(spec_payload)`` zipped against the grid), so a
1000-point sweep pickled the same spec a thousand times and every worker
re-parsed it per point.  The store inverts that: the pool initializer
seeds each worker with the raw payloads exactly once
(:func:`seed_worker_store`), and tasks ask for the *built* value —
parsed, compiled, whatever ``build`` does — which is constructed on
first use and cached for the worker's lifetime.

The store is thread-safe because it is also the parent process's shared
compiled-spec state when the evaluation service's job threads run
sweeps concurrently: ``value`` uses double-checked locking so exactly
one thread pays the build per key, a contract the concurrency hammer in
``tests/test_sched_faults.py`` fires at.
"""

from __future__ import annotations

import threading
from collections.abc import Callable, Mapping

from repro.sched.graph import SchedulerError


class WorkerPayloadStore:
    """Raw payloads keyed by content hash; values built lazily, once."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._payloads: dict[str, object] = {}
        self._values: dict[str, object] = {}
        self._building: dict[str, threading.Event] = {}
        self.builds = 0  # observable: the hammer asserts one build per key

    def seed(self, payloads: Mapping[str, object]) -> None:
        """Register raw payloads (idempotent for identical content).

        Re-seeding a key drops its built value only when the payload
        actually changed — two sweeps of the same spec sharing a worker
        must not rebuild.
        """
        with self._lock:
            for key, payload in payloads.items():
                if self._payloads.get(key) != payload:
                    self._payloads[key] = payload
                    self._values.pop(key, None)

    def payload(self, key: str) -> object:
        with self._lock:
            if key not in self._payloads:
                raise SchedulerError(
                    f"worker store has no payload for key {key!r}; was the"
                    " pool started with the seeding initializer?"
                )
            return self._payloads[key]

    def value(self, key: str, build: Callable[[object], object]) -> object:
        """The built value for ``key``, constructing it at most once.

        ``build`` receives the seeded payload.  Double-checked locking:
        the fast path is a lock-held dict hit; the slow path builds
        outside the lock (builds can be expensive — parsing a spec,
        generating a graph) and publishes under it, first writer wins.
        """
        with self._lock:
            if key in self._values:
                return self._values[key]
            if key not in self._payloads:
                raise SchedulerError(
                    f"worker store has no payload for key {key!r}; was the"
                    " pool started with the seeding initializer?"
                )
            payload = self._payloads[key]
            pending = self._building.get(key)
            if pending is None:
                pending = self._building[key] = threading.Event()
                builder = True
            else:
                builder = False
        if not builder:
            pending.wait()
            with self._lock:
                if key in self._values:
                    return self._values[key]
            # The builder raised; retry (we may become the builder now).
            return self.value(key, build)
        try:
            value = build(payload)
        except BaseException:
            with self._lock:
                self._building.pop(key, None)
            pending.set()
            raise
        # Publish *before* releasing waiters: a reader must never observe
        # "no value and nobody building" after a successful build, or it
        # would build a second time.
        with self._lock:
            self._values[key] = value
            self.builds += 1
            self._building.pop(key, None)
        pending.set()
        return value

    def clear(self) -> None:
        with self._lock:
            self._payloads.clear()
            self._values.clear()
            self.builds = 0

    def stats(self) -> dict:
        with self._lock:
            return {
                "payloads": len(self._payloads),
                "values": len(self._values),
                "builds": self.builds,
            }


#: The per-process store pool initializers seed.  Each pool *worker*
#: gets its own module instance (fresh interpreter or forked copy); in
#: the parent process it doubles as the shared compiled-spec state.
_STORE = WorkerPayloadStore()


def worker_store() -> WorkerPayloadStore:
    """This process's payload store."""
    return _STORE


def seed_worker_store(payloads: Mapping[str, object]) -> None:
    """Pool initializer: runs once per worker, not once per task."""
    _STORE.seed(payloads)
