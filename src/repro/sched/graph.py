"""Task graphs: named tasks, explicit dependencies, deterministic order.

A :class:`TaskGraph` is data, not behaviour: it validates its shape
(unique names, known dependencies, acyclicity) and answers one question
— a deterministic topological order — while
:class:`~repro.sched.runner.GraphScheduler` owns execution.  Keeping the
two apart is what makes the scheduler testable: properties about
ordering and chunking hold on the graph alone, without running anything.

Dependencies are declared two ways, and both count:

* ``deps=("other",)`` — a pure ordering constraint;
* a :class:`Dep` marker among the task's arguments — the dependency's
  *result* is substituted in its place at call time (the dask idiom of
  keys-in-task-tuples, without the tuple encoding).
"""

from __future__ import annotations

from collections.abc import Callable, Iterable
from dataclasses import dataclass

from repro.core.errors import ReproError


class SchedulerError(ReproError):
    """A malformed task graph (duplicate name, unknown dep, cycle)."""


class TaskFailure(ReproError):
    """One task raised; the graph run stopped cleanly at that task.

    ``task`` names the failed task and ``cause`` is the original
    exception — callers that present domain errors (e.g. the sweep
    engine's :class:`~repro.core.errors.ScenarioError`) re-wrap using
    both.
    """

    def __init__(self, task: str, cause: BaseException) -> None:
        super().__init__(f"task {task!r} failed: {type(cause).__name__}: {cause}")
        self.task = task
        self.cause = cause


@dataclass(frozen=True)
class Dep:
    """An argument placeholder: "the result of task ``name`` goes here"."""

    name: str


@dataclass(frozen=True)
class Task:
    """One node of the graph.

    ``pool`` marks the task as safe for a scheduler-supplied executor:
    its ``fn`` and ``args`` must then survive that executor's transport
    (pickling, for a process pool).  Unmarked tasks always run inline in
    the submitting process — the right home for cheap glue (merges,
    annotations) and for anything closing over live objects.
    """

    name: str
    fn: Callable
    args: tuple = ()
    deps: tuple[str, ...] = ()
    pool: bool = False


class TaskGraph:
    """An insertion-ordered DAG of named tasks."""

    def __init__(self) -> None:
        self._tasks: dict[str, Task] = {}

    def add(
        self,
        name: str,
        fn: Callable,
        *args: object,
        deps: Iterable[str] = (),
        pool: bool = False,
    ) -> str:
        """Add a task; returns its name (handy for chaining ``Dep``s).

        Dependencies are the union of ``deps`` and every :class:`Dep`
        marker in ``args``, de-duplicated in first-mention order.
        """
        if not name or not isinstance(name, str):
            raise SchedulerError(f"task name must be a non-empty string, got {name!r}")
        if name in self._tasks:
            raise SchedulerError(f"duplicate task name {name!r}")
        if not callable(fn):
            raise SchedulerError(f"task {name!r} needs a callable, got {fn!r}")
        merged = list(deps) + [arg.name for arg in args if isinstance(arg, Dep)]
        for dep in merged:
            if dep == name:
                raise SchedulerError(f"task {name!r} cannot depend on itself")
        task = Task(
            name=name,
            fn=fn,
            args=tuple(args),
            deps=tuple(dict.fromkeys(merged)),
            pool=pool,
        )
        self._tasks[name] = task
        return name

    def __len__(self) -> int:
        return len(self._tasks)

    def __contains__(self, name: object) -> bool:
        return name in self._tasks

    def __getitem__(self, name: str) -> Task:
        return self._tasks[name]

    @property
    def tasks(self) -> tuple[Task, ...]:
        """Every task, in insertion order."""
        return tuple(self._tasks.values())

    def dependents(self) -> dict[str, tuple[str, ...]]:
        """The reverse adjacency: task name -> tasks that depend on it."""
        reverse: dict[str, list[str]] = {name: [] for name in self._tasks}
        for task in self._tasks.values():
            for dep in task.deps:
                if dep in reverse:
                    reverse[dep].append(task.name)
        return {name: tuple(children) for name, children in reverse.items()}

    def order(self) -> tuple[str, ...]:
        """A deterministic topological order (Kahn's algorithm).

        Among simultaneously-ready tasks, insertion order wins — so two
        runs of the same graph construction schedule identically, a
        property the sweep engine's byte-identical-payloads contract
        leans on.  Raises :class:`SchedulerError` on unknown
        dependencies or cycles, naming the offenders.
        """
        index = {name: i for i, name in enumerate(self._tasks)}
        waiting: dict[str, int] = {}
        for task in self._tasks.values():
            unknown = [dep for dep in task.deps if dep not in self._tasks]
            if unknown:
                raise SchedulerError(
                    f"task {task.name!r} depends on unknown task(s)"
                    f" {sorted(unknown)}"
                )
            waiting[task.name] = len(task.deps)
        dependents = self.dependents()
        ready = sorted(
            (name for name, count in waiting.items() if count == 0),
            key=index.__getitem__,
        )
        ordered: list[str] = []
        while ready:
            name = ready.pop(0)
            ordered.append(name)
            freed = []
            for child in dependents[name]:
                waiting[child] -= 1
                if waiting[child] == 0:
                    freed.append(child)
            if freed:
                ready = sorted(ready + freed, key=index.__getitem__)
        if len(ordered) != len(self._tasks):
            stuck = sorted(name for name, count in waiting.items() if count > 0)
            raise SchedulerError(f"task graph has a cycle through {stuck}")
        return tuple(ordered)


def resolve_args(task: Task, results: dict[str, object]) -> tuple:
    """Substitute every :class:`Dep` in ``task.args`` with its result."""
    return tuple(
        results[arg.name] if isinstance(arg, Dep) else arg for arg in task.args
    )
