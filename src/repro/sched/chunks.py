"""Cost-class-aware chunk planning for grid-shaped work.

The old sweep pool used ``chunksize=max(1, len(grid) // 32)`` — a
one-size heuristic that degenerated at both ends: a 12-point simulated
sweep became 12 single-point tasks (maximum dispatch overhead exactly
where a point is cheap to batch), and a 64-point analytic sweep became
32 two-point tasks whose per-task pickling dwarfed the microseconds of
actual work.  Chunks are now sized from what one point *costs*:

* **cheap** (analytic / calibrated-over-analytic) points cost
  microseconds — the only way a pool ever pays off is shipping hundreds
  of them per task, so chunks are capped at :data:`CHEAP_CHUNK_POINTS`
  and never split finer than one chunk per worker;
* **expensive** (simulated / Monte-Carlo) points cost milliseconds to
  seconds — dispatch is already amortised, so the goal flips to load
  balancing: :data:`EXPENSIVE_CHUNKS_PER_WORKER` slices per worker keep
  a straggling chunk from idling the rest of the pool.

:func:`partition` then cuts the grid into contiguous ranges, preserving
grid order so chunked results concatenate back into exactly the serial
ordering — the byte-identity contract.
"""

from __future__ import annotations

import math

from repro.sched.graph import SchedulerError

#: Upper bound on a cheap chunk: enough points that the per-task pickle
#: and IPC round-trip is noise against the work inside the chunk.
CHEAP_CHUNK_POINTS = 256

#: Expensive chunks per worker: 1 would make the slowest chunk the
#: critical path; this many slices lets the pool rebalance around
#: stragglers without re-inflating dispatch costs.
EXPENSIVE_CHUNKS_PER_WORKER = 4


def chunk_size_for(total: int, *, expensive: bool, workers: int) -> int:
    """Points per chunk for a ``total``-point grid on ``workers`` workers."""
    if total < 1:
        raise SchedulerError(f"cannot chunk a grid of {total} points")
    if workers < 1:
        raise SchedulerError(f"chunking needs >= 1 worker, got {workers}")
    if expensive:
        return max(1, math.ceil(total / (workers * EXPENSIVE_CHUNKS_PER_WORKER)))
    return max(1, min(CHEAP_CHUNK_POINTS, math.ceil(total / workers)))


def partition(total: int, chunk_size: int) -> tuple[tuple[int, int], ...]:
    """Contiguous ``(start, stop)`` ranges covering ``range(total)`` once.

    Every index lands in exactly one chunk and chunks appear in grid
    order — the properties the hypothesis suite pins for arbitrary
    ``(total, chunk_size)``.
    """
    if total < 1:
        raise SchedulerError(f"cannot partition {total} points")
    if chunk_size < 1:
        raise SchedulerError(f"chunk size must be >= 1, got {chunk_size}")
    return tuple(
        (start, min(start + chunk_size, total))
        for start in range(0, total, chunk_size)
    )
