"""Dependency-aware graph execution, inline or over an executor.

:class:`GraphScheduler` walks a validated :class:`~repro.sched.graph.TaskGraph`:
pool-marked tasks go to the supplied :class:`concurrent.futures.Executor`
(submitted eagerly, the moment their dependencies complete), everything
else runs inline in the calling thread.  Ready pool tasks are always
submitted *before* inline work runs, so a cheap inline task (a sweep's
reference point, a merge) overlaps the pool's expensive chunks instead
of serialising in front of them.

Failure is the design centre, because the callers cache results on
success: the first task that raises stops the run — every not-yet-started
future is cancelled, every already-running one is drained (a process
pool cannot interrupt a running call, but it must not race the caller's
cleanup) — and one :class:`~repro.sched.graph.TaskFailure` naming the
task surfaces.  Tasks downstream of the failure are never started, so a
caller that writes caches only after :meth:`GraphScheduler.run` returns
can never write a partial result.
"""

from __future__ import annotations

from concurrent.futures import FIRST_COMPLETED, Executor, Future, wait
from dataclasses import dataclass

from repro.sched.graph import Task, TaskFailure, TaskGraph, resolve_args


@dataclass(frozen=True)
class ExecutionReport:
    """What a graph run produced, and in what order it happened.

    ``values`` maps every task name to its result.  ``started`` and
    ``finished`` record observed scheduling order — the hypothesis suite
    asserts every task *starts* after all of its dependencies
    *finished*, for arbitrary graphs and executors.
    """

    values: dict[str, object]
    started: tuple[str, ...]
    finished: tuple[str, ...]


class GraphScheduler:
    """Executes task graphs; one instance is reusable across runs.

    ``executor`` hosts pool-marked tasks; with ``None`` every task runs
    inline (the serial mode — same graph, same results, no transport).
    The scheduler never creates or shuts the executor down: lifecycle
    belongs to the caller, which knows whether the pool is per-run (a
    sweep's process pool) or long-lived (the service's job threads).
    """

    def __init__(self, executor: Executor | None = None) -> None:
        self.executor = executor

    def run(self, graph: TaskGraph) -> ExecutionReport:
        """Execute ``graph``; raises :class:`TaskFailure` on the first error."""
        order = graph.order()  # validates the graph (deps, cycles) up front
        index = {name: i for i, name in enumerate(order)}
        dependents = graph.dependents()
        waiting = {task.name: len(task.deps) for task in graph.tasks}

        values: dict[str, object] = {}
        started: list[str] = []
        finished: list[str] = []
        ready: list[str] = sorted(
            (name for name, count in waiting.items() if count == 0),
            key=index.__getitem__,
        )
        in_flight: dict[Future, str] = {}

        def complete(name: str, value: object) -> None:
            values[name] = value
            finished.append(name)
            freed = []
            for child in dependents[name]:
                waiting[child] -= 1
                if waiting[child] == 0:
                    freed.append(child)
            if freed:
                ready.extend(sorted(freed, key=index.__getitem__))
                ready.sort(key=index.__getitem__)

        def fail(name: str, error: BaseException) -> None:
            for future in in_flight:
                future.cancel()
            # Drain what could not be cancelled: the caller may tear the
            # pool down (or write caches) the moment we raise, and a
            # still-running task must not race that.
            wait(list(in_flight))
            raise TaskFailure(name, error) from error

        while len(finished) < len(order):
            # Pool tasks first: get the executor busy before any inline
            # work blocks this thread.
            pooled = [n for n in ready if graph[n].pool and self.executor is not None]
            for name in pooled:
                ready.remove(name)
                task = graph[name]
                started.append(name)
                in_flight[self.executor.submit(task.fn, *resolve_args(task, values))] = name
            if ready:
                name = ready.pop(0)
                task = graph[name]
                started.append(name)
                try:
                    value = task.fn(*resolve_args(task, values))
                except BaseException as error:  # noqa: BLE001 - rewrapped
                    fail(name, error)
                complete(name, value)
                continue
            if not in_flight:
                break  # graph.order() guarantees this means "all done"
            done, _ = wait(list(in_flight), return_when=FIRST_COMPLETED)
            for future in done:
                name = in_flight.pop(future)
                try:
                    value = future.result()
                except BaseException as error:  # noqa: BLE001 - rewrapped
                    fail(name, error)
                complete(name, value)

        return ExecutionReport(
            values=values, started=tuple(started), finished=tuple(finished)
        )


def run_single_task(name: str, fn, *args) -> object:
    """Run one callable through the scheduler, for its failure semantics.

    The evaluation service's async jobs route through this: a job is a
    one-task graph, so job failures carry the same
    :class:`TaskFailure`-with-named-task shape as a failed sweep chunk,
    and anything the sweep layer runs underneath (chunked pools) nests
    naturally.
    """
    graph = TaskGraph()
    graph.add(name, fn, *args)
    return GraphScheduler().run(graph).values[name]
