"""Dependency-aware graph execution, inline or over an executor.

:class:`GraphScheduler` walks a validated :class:`~repro.sched.graph.TaskGraph`:
pool-marked tasks go to the supplied :class:`concurrent.futures.Executor`
(submitted eagerly, the moment their dependencies complete), everything
else runs inline in the calling thread.  Ready pool tasks are always
submitted *before* inline work runs, so a cheap inline task (a sweep's
reference point, a merge) overlaps the pool's expensive chunks instead
of serialising in front of them.

Failure is the design centre, because the callers cache results on
success: the first task that raises stops the run — every not-yet-started
future is cancelled, every already-running one is drained (a process
pool cannot interrupt a running call, but it must not race the caller's
cleanup) — and one :class:`~repro.sched.graph.TaskFailure` naming the
task surfaces.  Tasks downstream of the failure are never started, so a
caller that writes caches only after :meth:`GraphScheduler.run` returns
can never write a partial result.

Every run also answers "where did the time go": the report carries
per-task queue-wait (ready → started) and run durations, inline tasks
record ``sched.task`` spans when tracing is on, and the scheduler
feeds ``repro_sched_*`` counters/histograms on the global registry.
"""

from __future__ import annotations

import time
from concurrent.futures import FIRST_COMPLETED, Executor, Future, wait
from dataclasses import dataclass, field

from repro.obs.metrics import get_registry
from repro.obs.trace import tracer
from repro.sched.graph import Task, TaskFailure, TaskGraph, resolve_args

_REG = get_registry()
_TASKS = _REG.counter("repro_sched_tasks_total", "Graph tasks completed")
_POOL_TASKS = _REG.counter(
    "repro_sched_pool_tasks_total", "Graph tasks executed on an executor"
)
_FAILURES = _REG.counter("repro_sched_failures_total", "Graph tasks that raised")
_QUEUE_WAIT = _REG.histogram(
    "repro_sched_queue_wait_seconds", "Task wait between ready and started"
)
_RUN_SECONDS = _REG.histogram(
    "repro_sched_task_run_seconds", "Task run duration (inline call or pool round-trip)"
)


@dataclass(frozen=True)
class TaskTiming:
    """Where one task's wall-clock went.

    ``queue_wait_s`` is ready → started (how long the task sat behind
    other work once its dependencies finished); ``run_s`` is the inline
    call duration, or the submit → completion round-trip for pool tasks
    (transport included — that is the price the caller actually paid).
    """

    queue_wait_s: float
    run_s: float
    pooled: bool


@dataclass(frozen=True)
class ExecutionReport:
    """What a graph run produced, and in what order it happened.

    ``values`` maps every task name to its result.  ``started`` and
    ``finished`` record observed scheduling order — the hypothesis suite
    asserts every task *starts* after all of its dependencies
    *finished*, for arbitrary graphs and executors.  ``timings`` holds a
    :class:`TaskTiming` per completed task.
    """

    values: dict[str, object]
    started: tuple[str, ...]
    finished: tuple[str, ...]
    timings: dict[str, TaskTiming] = field(default_factory=dict)


class GraphScheduler:
    """Executes task graphs; one instance is reusable across runs.

    ``executor`` hosts pool-marked tasks; with ``None`` every task runs
    inline (the serial mode — same graph, same results, no transport).
    The scheduler never creates or shuts the executor down: lifecycle
    belongs to the caller, which knows whether the pool is per-run (a
    sweep's process pool) or long-lived (the service's job threads).
    """

    def __init__(self, executor: Executor | None = None) -> None:
        self.executor = executor

    def run(self, graph: TaskGraph) -> ExecutionReport:
        """Execute ``graph``; raises :class:`TaskFailure` on the first error."""
        order = graph.order()  # validates the graph (deps, cycles) up front
        index = {name: i for i, name in enumerate(order)}
        dependents = graph.dependents()
        waiting = {task.name: len(task.deps) for task in graph.tasks}

        values: dict[str, object] = {}
        started: list[str] = []
        finished: list[str] = []
        timings: dict[str, TaskTiming] = {}
        ready: list[str] = sorted(
            (name for name, count in waiting.items() if count == 0),
            key=index.__getitem__,
        )
        ready_at: dict[str, float] = {name: time.perf_counter() for name in ready}
        queue_waits: dict[str, float] = {}
        in_flight: dict[Future, str] = {}
        submitted_at: dict[str, float] = {}

        def complete(name: str, value: object, run_s: float, pooled: bool) -> None:
            values[name] = value
            finished.append(name)
            timings[name] = TaskTiming(
                queue_wait_s=queue_waits.get(name, 0.0), run_s=run_s, pooled=pooled
            )
            _TASKS.inc()
            if pooled:
                _POOL_TASKS.inc()
            _RUN_SECONDS.observe(run_s)
            now = time.perf_counter()
            freed = []
            for child in dependents[name]:
                waiting[child] -= 1
                if waiting[child] == 0:
                    freed.append(child)
            if freed:
                for child in freed:
                    ready_at[child] = now
                ready.extend(sorted(freed, key=index.__getitem__))
                ready.sort(key=index.__getitem__)

        def mark_started(name: str) -> float:
            """Record queue wait; returns the start timestamp."""
            now = time.perf_counter()
            queue_wait = now - ready_at.get(name, now)
            _QUEUE_WAIT.observe(queue_wait)
            queue_waits[name] = queue_wait
            started.append(name)
            return now

        def fail(name: str, error: BaseException) -> None:
            _FAILURES.inc()
            for future in in_flight:
                future.cancel()
            # Drain what could not be cancelled: the caller may tear the
            # pool down (or write caches) the moment we raise, and a
            # still-running task must not race that.
            wait(list(in_flight))
            raise TaskFailure(name, error) from error

        while len(finished) < len(order):
            # Pool tasks first: get the executor busy before any inline
            # work blocks this thread.
            pooled = [n for n in ready if graph[n].pool and self.executor is not None]
            for name in pooled:
                ready.remove(name)
                task = graph[name]
                submitted_at[name] = mark_started(name)
                in_flight[self.executor.submit(task.fn, *resolve_args(task, values))] = name
            if ready:
                name = ready.pop(0)
                task = graph[name]
                t0 = mark_started(name)
                try:
                    with tracer().span("sched.task", {"task": name, "pooled": False}):
                        value = task.fn(*resolve_args(task, values))
                except BaseException as error:  # noqa: BLE001 - rewrapped
                    fail(name, error)
                complete(name, value, time.perf_counter() - t0, pooled=False)
                continue
            if not in_flight:
                break  # graph.order() guarantees this means "all done"
            done, _ = wait(list(in_flight), return_when=FIRST_COMPLETED)
            for future in done:
                name = in_flight.pop(future)
                try:
                    value = future.result()
                except BaseException as error:  # noqa: BLE001 - rewrapped
                    fail(name, error)
                complete(
                    name,
                    value,
                    time.perf_counter() - submitted_at[name],
                    pooled=True,
                )

        return ExecutionReport(
            values=values,
            started=tuple(started),
            finished=tuple(finished),
            timings=timings,
        )


def run_single_task(name: str, fn, *args) -> object:
    """Run one callable through the scheduler, for its failure semantics.

    The evaluation service's async jobs route through this: a job is a
    one-task graph, so job failures carry the same
    :class:`TaskFailure`-with-named-task shape as a failed sweep chunk,
    and anything the sweep layer runs underneath (chunked pools) nests
    naturally.
    """
    graph = TaskGraph()
    graph.add(name, fn, *args)
    return GraphScheduler().run(graph).values[name]
