"""A small deterministic task-graph scheduler (the sweep engine's core).

The benchmarks exposed the stack's one real perf regression: process-pool
sweeps dispatched one task *per grid point*, each carrying the full spec
payload, so per-task pickling and IPC swamped the actual work
(``BENCH_sim.json`` recorded the pool running at ~0.94x serial).  This
package is the cure, in the style of dask's chunked task graphs:

* :mod:`repro.sched.graph` — tasks with explicit dependencies, validated
  into a DAG with a deterministic topological order;
* :mod:`repro.sched.chunks` — cost-class-aware chunk planning: partition
  a grid into contiguous chunks sized so each dispatched task amortises
  its overhead (big chunks for cheap analytic points, load-balancing
  slices for expensive simulated ones);
* :mod:`repro.sched.runner` — :class:`GraphScheduler`, which executes a
  graph dependency-aware, running pool-marked tasks on an executor and
  everything else inline, and fails *cleanly*: one
  :class:`~repro.sched.graph.TaskFailure` naming the failed task, every
  outstanding task cancelled or drained, never a hang;
* :mod:`repro.sched.state` — the per-worker payload store that ships a
  compiled spec to each pool worker **once** (pool initializer) instead
  of once per task.  Payloads are keyed by content hash, so the same
  seeding seam serves the sharded HTTP tier
  (:mod:`repro.service.shard`): pre-forked serving workers pointed at
  one cache directory dedupe compiled targets through the columnar
  store exactly like pool workers dedupe seeded payloads.

Scenario sweeps (:class:`repro.scenarios.sweep.SweepRunner`), the
planner's derived-scenario sweeps and the evaluation service's async
jobs all execute through this scheduler; ``docs/scheduler.md`` walks
through the model.
"""

from repro.sched.chunks import (
    CHEAP_CHUNK_POINTS,
    EXPENSIVE_CHUNKS_PER_WORKER,
    chunk_size_for,
    partition,
)
from repro.sched.graph import Dep, SchedulerError, Task, TaskFailure, TaskGraph
from repro.sched.runner import (
    ExecutionReport,
    GraphScheduler,
    TaskTiming,
    run_single_task,
)
from repro.sched.state import WorkerPayloadStore, seed_worker_store, worker_store

__all__ = [
    "CHEAP_CHUNK_POINTS",
    "Dep",
    "EXPENSIVE_CHUNKS_PER_WORKER",
    "ExecutionReport",
    "GraphScheduler",
    "SchedulerError",
    "Task",
    "TaskFailure",
    "TaskGraph",
    "TaskTiming",
    "WorkerPayloadStore",
    "chunk_size_for",
    "partition",
    "run_single_task",
    "seed_worker_store",
    "worker_store",
]
