"""Command-line entry point: paper experiments and declarative scenarios.

Installed as ``repro-experiments``:

    repro-experiments list
    repro-experiments run figure2
    repro-experiments run-all --quick
    repro-experiments scenario list
    repro-experiments scenario validate my-spec.json
    repro-experiments scenario run figure2
    repro-experiments scenario run figure2 --backend simulated
    repro-experiments scenario sweep capacity-sweep --export sweep.csv
    repro-experiments scenario sweep straggler-sweep --backend simulated
    repro-experiments scenario calibrate figure2 --source simulated
    repro-experiments plan list
    repro-experiments plan run plan-bp-budget --format json
    repro-experiments plan run plan-gd-deadline --backend simulated
    repro-experiments hardware list
    repro-experiments serve --port 8765
    repro-experiments client evaluate figure2 --url http://127.0.0.1:8765
    repro-experiments client sweep capacity-sweep --mode async
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Sequence

from repro.core.errors import ExperimentError, ReproError
from repro.experiments import experiment_ids, run_all, run_experiment
from repro.experiments.plotting import render_table


def _add_scenario_run_options(parser: argparse.ArgumentParser) -> None:
    """Options shared by ``scenario run`` and ``scenario sweep``."""
    parser.add_argument(
        "spec", help="a bundled scenario name (see 'scenario list') or a JSON file path"
    )
    parser.add_argument(
        "--workers",
        metavar="GRID",
        default=None,
        help=(
            "override the spec's worker grid: 'log:<start>:<stop>:<points>'"
            " (log-spaced, what the vectorized path makes cheap),"
            " '<min>:<max>[:<step>]', or an explicit list '1,2,4'"
        ),
    )
    parser.add_argument(
        "--backend",
        choices=("analytic", "simulated", "calibrated", "network"),
        default=None,
        help=(
            "override the spec's evaluation backend: 'analytic' (closed-form"
            " cost trees), 'simulated' (discrete-event cluster runs),"
            " 'calibrated' (measure, fit, evaluate the fitted family), or"
            " 'network' (flow-level runs over the spec's topology block)"
        ),
    )
    parser.add_argument(
        "--parallel",
        choices=("auto", "serial", "process"),
        default="auto",
        help="evaluation mode (default: auto — pool for expensive grids)",
    )
    parser.add_argument(
        "--jobs", type=int, default=None, help="process-pool size (default: cpu count)"
    )
    parser.add_argument(
        "--cache-dir", default=None, help="result cache directory (default: ~/.cache/repro)"
    )
    parser.add_argument(
        "--no-cache", action="store_true", help="recompute even if a cached result exists"
    )
    parser.add_argument(
        "--export",
        metavar="PATH",
        default=None,
        help="write the structured result to PATH (.json or .csv)",
    )


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument schema."""
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description=(
            "Reproduce the tables and figures of 'Modeling Scalability of"
            " Distributed Machine Learning' (Ulanov et al., ICDE 2017)."
        ),
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="list available experiment ids")

    run_parser = subparsers.add_parser("run", help="run one experiment")
    run_parser.add_argument("experiment", help="experiment id (see 'list')")
    run_parser.add_argument(
        "--quick", action="store_true", help="smaller grids/trials for a fast pass"
    )

    run_all_parser = subparsers.add_parser("run-all", help="run every experiment")
    run_all_parser.add_argument(
        "--quick", action="store_true", help="smaller grids/trials for a fast pass"
    )

    scenario_parser = subparsers.add_parser(
        "scenario", help="declarative scenario engine (see docs/scenarios.md)"
    )
    scenario_sub = scenario_parser.add_subparsers(dest="scenario_command", required=True)

    scenario_sub.add_parser("list", help="list bundled scenario specs")

    validate_parser = scenario_sub.add_parser(
        "validate", help="check a scenario spec without running it"
    )
    validate_parser.add_argument(
        "spec", help="a bundled scenario name or a JSON file path"
    )

    scenario_run = scenario_sub.add_parser(
        "run", help="run a scenario and print its speedup report"
    )
    _add_scenario_run_options(scenario_run)

    scenario_sweep = scenario_sub.add_parser(
        "sweep", help="expand the sweep grid and print one summary row per point"
    )
    _add_scenario_run_options(scenario_sweep)
    scenario_sweep.add_argument(
        "--refine",
        action="store_true",
        help=(
            "progressive refinement: evaluate a coarse worker subset per"
            " grid point and densify only around the time minimum and the"
            " speedup knee (pointwise backends only)"
        ),
    )
    scenario_sweep.add_argument(
        "--stats",
        action="store_true",
        help="report store effectiveness (points reused vs computed)",
    )
    scenario_sweep.add_argument(
        "--trace",
        metavar="PATH",
        nargs="?",
        const="trace-spans.json",
        default=None,
        help=(
            "record spans for the whole run (compile, chunks, backend"
            " evaluations, store commits) and write them to PATH"
            " (default: trace-spans.json); view with 'repro-experiments"
            " trace export'"
        ),
    )

    cache_parser = scenario_sub.add_parser(
        "cache", help="inspect or clean the on-disk result store"
    )
    cache_sub = cache_parser.add_subparsers(dest="cache_command", required=True)
    cache_stats = cache_sub.add_parser(
        "stats", help="what is stored: families, views, points, bytes"
    )
    cache_clear = cache_sub.add_parser(
        "clear", help="delete every stored result (and stale staging files)"
    )
    cache_gc = cache_sub.add_parser(
        "gc", help="remove garbage only: stale temps, orphan chunks"
    )
    for cache_command in (cache_stats, cache_clear, cache_gc):
        cache_command.add_argument(
            "--cache-dir",
            default=None,
            help="result cache directory (default: ~/.cache/repro)",
        )
    cache_gc.add_argument(
        "--max-age",
        type=float,
        default=None,
        metavar="SECONDS",
        help="age past which unreferenced files count as garbage (default: 3600)",
    )

    calibrate_parser = scenario_sub.add_parser(
        "calibrate",
        help=(
            "measure a scenario through a backend, fit feature families to"
            " the measurements, and report MAPE/R² per family"
        ),
    )
    calibrate_parser.add_argument(
        "spec", help="a bundled scenario name (see 'scenario list') or a JSON file path"
    )
    calibrate_parser.add_argument(
        "--source",
        choices=("analytic", "simulated"),
        default=None,
        help=(
            "backend that takes the measurements (default: the spec's"
            " calibration block, else simulated when the workload is"
            " BSP-expressible, else analytic)"
        ),
    )
    calibrate_parser.add_argument(
        "--features",
        metavar="NAME[,NAME...]",
        default=None,
        help="feature families to fit (default: every library)",
    )
    calibrate_parser.add_argument(
        "--workers",
        metavar="GRID",
        default=None,
        help="override the spec's worker grid (same syntax as 'scenario run')",
    )
    calibrate_parser.add_argument(
        "--export",
        metavar="PATH",
        default=None,
        help="write the calibration report to PATH (.json)",
    )

    plan_parser = subparsers.add_parser(
        "plan", help="capacity planner: provisioning decisions (see docs/planner.md)"
    )
    plan_sub = plan_parser.add_subparsers(dest="plan_command", required=True)

    plan_sub.add_parser("list", help="list bundled capacity plans")

    plan_validate = plan_sub.add_parser(
        "validate", help="check a plan spec without optimising it"
    )
    plan_validate.add_argument("spec", help="a bundled plan name or a JSON file path")

    plan_run = plan_sub.add_parser(
        "run", help="optimise a plan and print its recommendation"
    )
    plan_run.add_argument(
        "spec", help="a bundled plan name (see 'plan list') or a JSON file path"
    )
    plan_run.add_argument(
        "--backend",
        choices=("analytic", "simulated", "calibrated", "network"),
        default=None,
        help=(
            "override the evaluation backend candidates are measured"
            " through (e.g. stress-check a plan under the simulated"
            " backend's jitter and stragglers)"
        ),
    )
    plan_run.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format: human-readable text (default) or the JSON payload",
    )
    plan_run.add_argument(
        "--parallel",
        choices=("auto", "serial", "process"),
        default="auto",
        help="evaluation mode (default: auto — pool for expensive grids)",
    )
    plan_run.add_argument(
        "--jobs", type=int, default=None, help="process-pool size (default: cpu count)"
    )
    plan_run.add_argument(
        "--cache-dir", default=None, help="result cache directory (default: ~/.cache/repro)"
    )
    plan_run.add_argument(
        "--no-cache", action="store_true", help="recompute even if a cached result exists"
    )
    plan_run.add_argument(
        "--refine",
        action="store_true",
        help=(
            "progressive refinement: candidates evaluate a coarse worker"
            " subset and densify only around the optimum and the knee"
            " (pointwise backends only)"
        ),
    )
    plan_run.add_argument(
        "--export",
        metavar="PATH",
        default=None,
        help=(
            "write the recommendation to PATH (.json: full report;"
            " .csv: the priced candidate table)"
        ),
    )

    hardware_parser = subparsers.add_parser(
        "hardware", help="the hardware catalog scenario and plan specs draw from"
    )
    hardware_sub = hardware_parser.add_subparsers(dest="hardware_command", required=True)
    hardware_sub.add_parser(
        "list", help="list catalog entries with their key specs and prices"
    )

    trace_parser = subparsers.add_parser(
        "trace", help="inspect span files written by 'scenario sweep --trace'"
    )
    trace_sub = trace_parser.add_subparsers(dest="trace_command", required=True)
    trace_export = trace_sub.add_parser(
        "export",
        help="convert a span file to Chrome trace-event JSON (chrome://tracing, Perfetto)",
    )
    trace_export.add_argument("spans", help="a span file (repro-trace-v1 JSON)")
    trace_export.add_argument(
        "--out",
        metavar="PATH",
        default=None,
        help="output path (default: <spans>.chrome.json)",
    )
    trace_summary = trace_sub.add_parser(
        "summary", help="per-span-name wall/CPU time table for a span file"
    )
    trace_summary.add_argument("spans", help="a span file (repro-trace-v1 JSON)")

    serve_parser = subparsers.add_parser(
        "serve", help="run the long-lived evaluation service (see docs/service.md)"
    )
    serve_parser.add_argument(
        "--host", default="127.0.0.1", help="bind address (default: 127.0.0.1)"
    )
    serve_parser.add_argument(
        "--port", type=int, default=8765, help="bind port (default: 8765; 0 = ephemeral)"
    )
    serve_parser.add_argument(
        "--parallel",
        choices=("auto", "serial", "process"),
        default="auto",
        help="sweep evaluation mode (default: auto)",
    )
    serve_parser.add_argument(
        "--jobs", type=int, default=None, help="sweep process-pool size (default: cpu count)"
    )
    serve_parser.add_argument(
        "--cache-dir", default=None, help="result cache directory (default: ~/.cache/repro)"
    )
    serve_parser.add_argument(
        "--no-cache", action="store_true", help="recompute even if a cached result exists"
    )
    serve_parser.add_argument(
        "--target-cache",
        type=int,
        default=256,
        help="compiled-target LRU entries (default: 256)",
    )
    serve_parser.add_argument(
        "--coalesce-window",
        type=float,
        default=0.0,
        help=(
            "seconds the first of a batch of same-spec requests waits for"
            " more to join its vectorized evaluation (default: 0)"
        ),
    )
    serve_parser.add_argument(
        "--max-concurrency",
        type=int,
        default=8,
        help="in-flight request limit before answering 429 (default: 8)",
    )
    serve_parser.add_argument(
        "--job-workers", type=int, default=2, help="async job threads (default: 2)"
    )
    serve_parser.add_argument(
        "--max-jobs",
        type=int,
        default=32,
        help="queued+running async job limit before answering 429 (default: 32)",
    )
    serve_parser.add_argument(
        "--sync-limit",
        type=int,
        default=64,
        help=(
            "grid-point budget a sweep/plan may cost synchronously; larger"
            " requests become 202 jobs (default: 64)"
        ),
    )
    serve_parser.add_argument(
        "--trace",
        action="store_true",
        help=(
            "record request spans (bounded buffer); clients root them in"
            " their own traces via the X-Repro-Trace-Id header"
        ),
    )
    serve_parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help=(
            "worker processes accepting on the shared port; >1 enables the"
            " pre-fork sharded mode with a respawning supervisor"
            " (default: 1 = classic single-process serving)"
        ),
    )
    serve_parser.add_argument(
        "--control-dir",
        default=None,
        help=(
            "sharded mode: directory for the worker registry and mirrored"
            " job state (default: a fresh temp directory)"
        ),
    )
    serve_parser.add_argument(
        "--drain-timeout",
        type=float,
        default=10.0,
        help=(
            "sharded mode: seconds a SIGTERM'd worker may spend finishing"
            " in-flight requests before being killed (default: 10)"
        ),
    )

    client_parser = subparsers.add_parser(
        "client", help="talk to a running evaluation service"
    )
    # Shared by every client subcommand (so '--url' may follow the
    # subcommand, where people naturally type it).
    client_common = argparse.ArgumentParser(add_help=False)
    client_common.add_argument(
        "--url",
        default=None,
        help=(
            "service base URL (default: $REPRO_SERVICE_URL or"
            " http://127.0.0.1:8765)"
        ),
    )
    client_common.add_argument(
        "--timeout", type=float, default=60.0, help="request timeout seconds"
    )
    client_sub = client_parser.add_subparsers(dest="client_command", required=True)
    client_sub.add_parser("health", help="GET /healthz", parents=[client_common])
    client_sub.add_parser("specs", help="GET /v1/specs", parents=[client_common])
    client_sub.add_parser("hardware", help="GET /v1/hardware", parents=[client_common])

    client_evaluate = client_sub.add_parser(
        "evaluate",
        help="POST /v1/evaluate: one spec's speedup curve",
        parents=[client_common],
    )
    client_evaluate.add_argument(
        "spec", help="a builtin scenario name or a local JSON file (sent inline)"
    )
    client_evaluate.add_argument("--workers", metavar="GRID", default=None)
    client_evaluate.add_argument(
        "--backend", choices=("analytic", "simulated", "calibrated", "network"), default=None
    )

    client_sweep = client_sub.add_parser(
        "sweep",
        help="POST /v1/sweep: a whole sweep grid (may run as a job)",
        parents=[client_common],
    )
    client_sweep.add_argument(
        "spec", help="a builtin scenario name or a local JSON file (sent inline)"
    )
    client_sweep.add_argument("--workers", metavar="GRID", default=None)
    client_sweep.add_argument(
        "--backend", choices=("analytic", "simulated", "calibrated", "network"), default=None
    )
    client_sweep.add_argument("--mode", choices=("auto", "sync", "async"), default=None)
    client_sweep.add_argument(
        "--no-wait",
        action="store_true",
        help="print the 202 job handle instead of polling until done",
    )

    client_plan = client_sub.add_parser(
        "plan",
        help="POST /v1/plan: optimise a capacity plan (may run as a job)",
        parents=[client_common],
    )
    client_plan.add_argument(
        "spec", help="a builtin plan name or a local JSON file (sent inline)"
    )
    client_plan.add_argument(
        "--backend", choices=("analytic", "simulated", "calibrated", "network"), default=None
    )
    client_plan.add_argument("--mode", choices=("auto", "sync", "async"), default=None)
    client_plan.add_argument(
        "--no-wait",
        action="store_true",
        help="print the 202 job handle instead of polling until done",
    )

    client_calibrate = client_sub.add_parser(
        "calibrate",
        help="POST /v1/calibrate: measure, fit, rank feature families",
        parents=[client_common],
    )
    client_calibrate.add_argument(
        "spec", help="a builtin scenario name or a local JSON file (sent inline)"
    )
    client_calibrate.add_argument("--workers", metavar="GRID", default=None)
    client_calibrate.add_argument(
        "--source", choices=("analytic", "simulated"), default=None
    )
    client_calibrate.add_argument(
        "--features", metavar="NAME[,NAME...]", default=None
    )

    client_job = client_sub.add_parser(
        "job", help="GET /v1/jobs/<id>: poll a job", parents=[client_common]
    )
    client_job.add_argument("job_id", help="the job id a 202 answer returned")
    client_job.add_argument(
        "--wait", action="store_true", help="poll until the job finishes"
    )
    return parser


def _print_unknown_experiment(experiment: str) -> None:
    """A helpful unknown-id error: the valid ids, one per line."""
    print(f"error: unknown experiment {experiment!r}", file=sys.stderr)
    print("valid ids:", file=sys.stderr)
    for experiment_id in experiment_ids():
        print(f"  {experiment_id}", file=sys.stderr)


def _scenario_runner(args: argparse.Namespace):
    from repro.scenarios import SweepRunner

    return SweepRunner(
        mode=args.parallel,
        max_workers=args.jobs,
        cache_dir=args.cache_dir,
        use_cache=not args.no_cache,
        refine=getattr(args, "refine", False),
    )


def _stats_line(stats: dict) -> str:
    mode = stats.get("mode", "?")
    points = stats.get("grid_points", "?")
    elapsed = stats.get("elapsed_s", 0.0)
    hit = " (cache hit)" if stats.get("cache_hit") else ""
    return f"[{points} grid point(s) via {mode}{hit} in {elapsed:.3f}s]"


def _store_stats_line(stats: dict) -> str:
    """The ``scenario sweep --stats`` line: store effectiveness."""
    reused = stats.get("points_reused", 0)
    computed = stats.get("points_computed", 0)
    line = f"[store: {reused} point(s) reused, {computed} computed]"
    if stats.get("mode") == "refine":
        evaluated = stats.get("evaluated_curve_points", 0)
        dense = stats.get("dense_total_curve_points", 0)
        fraction = stats.get("refine_fraction", 0.0)
        line += (
            f" [refine: evaluated {evaluated} of {dense} dense curve"
            f" point(s) ({fraction:.1%})]"
        )
    return line


def _phase_stats_line(stats: dict) -> str:
    """The ``--stats`` phase line: where the scheduler spent the run."""
    phases = stats.get("phases") or {}
    chunks = phases.get("chunk_count", 0)
    parts = [
        f"{chunks} chunk(s)",
        f"run {phases.get('chunk_run_s', 0.0):.3f}s",
        f"queue-wait {phases.get('chunk_queue_wait_s', 0.0):.3f}s",
        f"slowest {phases.get('slowest_chunk_s', 0.0):.3f}s",
    ]
    named = {
        name[:-len("_s")]: value
        for name, value in sorted(phases.items())
        if name.endswith("_s") and not name.startswith(("chunk_", "slowest_"))
    }
    for name, value in named.items():
        parts.append(f"{name} {value:.3f}s")
    return f"[tasks: {', '.join(parts)}]"


def _run_trace_command(args: argparse.Namespace) -> int:
    """``trace export|summary`` over a span file from ``--trace``."""
    import json

    from repro.obs import chrome_trace, load_spans, render_span_summary

    trace_id, records = load_spans(args.spans)
    if args.trace_command == "summary":
        print(f"== trace {trace_id}: {len(records)} span(s)")
        print()
        print(render_span_summary(records))
        return 0
    # export: Chrome trace-event JSON for chrome://tracing / Perfetto.
    out = args.out or f"{args.spans.removesuffix('.json')}.chrome.json"
    with open(out, "w", encoding="utf-8") as handle:
        json.dump(chrome_trace(records), handle)
    print(f"wrote {len(records)} span(s) to {out}")
    return 0


def _run_cache_command(args: argparse.Namespace) -> int:
    """``scenario cache stats|clear|gc`` over both storage layers."""
    from repro.scenarios.cache import ResultCache
    from repro.store import ResultStore

    cache = ResultCache(args.cache_dir)
    store = ResultStore(args.cache_dir)
    if args.cache_command == "stats":
        disk = store.disk_stats()
        blobs = (
            len(list(cache.directory.glob("*.json")))
            if cache.directory.exists()
            else 0
        )
        print(f"store directory: {store.directory}")
        print(f"  families:      {disk['families']}")
        print(f"  views:         {disk['views']}")
        print(f"  points stored: {disk['points_stored']}")
        print(f"  bytes stored:  {disk['bytes_stored']}")
        print(f"  temp files:    {disk['temp_files']}")
        print(f"blob entries:    {blobs}")
        return 0
    if args.cache_command == "clear":
        removed = store.clear() + cache.clear()
        print(f"removed {removed} entr{'y' if removed == 1 else 'ies'}")
        return 0
    # gc: garbage only — live entries and fresh staging files survive.
    max_age = args.max_age if args.max_age is not None else 3600.0
    counts = store.gc(max_age_s=max_age)
    counts["stale_temps"] += cache.gc(max_age_s=max_age)
    for name, count in counts.items():
        print(f"{name.replace('_', ' ')}: {count}")
    return 0


def _run_calibrate_command(args: argparse.Namespace, spec) -> int:
    from repro.scenarios.calibrate import calibrate_scenario

    features = None
    if args.features:
        features = tuple(name.strip() for name in args.features.split(",") if name.strip())
    report = calibrate_scenario(spec, source=args.source, features=features)
    print(f"== scenario calibrate: {spec.name} (measured via {report.source})")
    print()
    print(render_table(report.rows()))
    best = report.best
    print(
        f"best family: {best.features}"
        f" (MAPE {best.mape_pct:.2f}%, R² {best.r2:.4f})"
    )
    if args.export:
        target = report.to_json(args.export)
        print(f"exported to {target}")
    return 0


def _run_scenario_command(args: argparse.Namespace) -> int:
    from repro.scenarios import builtin_names, resolve_scenario, with_backend
    from repro.scenarios.bridge import scenario_experiment_result
    from repro.scenarios.grids import parse_worker_grid, with_workers
    from repro.scenarios.sweep import export_format

    if args.scenario_command == "list":
        for name in builtin_names():
            print(name)
        return 0
    if args.scenario_command == "cache":
        return _run_cache_command(args)

    spec = resolve_scenario(args.spec)
    if getattr(args, "workers", None):
        spec = with_workers(spec, parse_worker_grid(args.workers))
    if getattr(args, "backend", None):
        # Rewrites the spec's backend block, so the override flows into
        # the content hash (and hence the result cache) like any other
        # spec change.
        spec = with_backend(spec, args.backend)
    if args.scenario_command == "validate":
        print(
            f"ok: scenario {spec.name!r}"
            f" (algorithm {spec.algorithm.kind!r},"
            f" backend {spec.backend.kind!r},"
            f" {len(spec.workers)} worker counts,"
            f" {spec.grid_size} grid point(s))"
        )
        return 0
    if args.scenario_command == "calibrate":
        if args.export and export_format(args.export) != ".json":
            raise ReproError("calibration reports export as .json only")
        return _run_calibrate_command(args, spec)

    if args.export:
        # Fail before the run, not after: a rejected export target must
        # not cost a full (possibly expensive, uncached) sweep first.
        export_format(args.export)
    trace_path = getattr(args, "trace", None)
    if trace_path:
        from repro.obs import tracer

        tracer().start()
    try:
        result = _scenario_runner(args).run(spec)
    finally:
        if trace_path:
            from repro.obs import render_span_summary, tracer, write_spans

            trace_id = tracer().trace_id
            records = tracer().drain()
            tracer().stop()
            if records:
                write_spans(trace_path, records, trace_id)
    if args.scenario_command == "run":
        print(scenario_experiment_result(spec, result).render())
    else:  # sweep
        print(f"== scenario sweep: {spec.name}")
        print()
        print(render_table(result.summary_rows()))
    print(_stats_line(result.stats))
    if getattr(args, "stats", False):
        print(_store_stats_line(result.stats))
        if result.stats.get("phases"):
            print(_phase_stats_line(result.stats))
    if trace_path:
        print(f"[trace: {len(records)} span(s) written to {trace_path}]")
        print(render_span_summary(records))
    if args.export:
        target = result.export(args.export)
        print(f"exported to {target}")
    return 0


def _run_plan_command(args: argparse.Namespace) -> int:
    import json

    from repro.planner import builtin_plan_names, resolve_plan, run_plan
    from repro.planner.report import export_format as plan_export_format
    from repro.scenarios import SweepRunner

    if args.plan_command == "list":
        for name in builtin_plan_names():
            print(name)
        return 0

    plan = resolve_plan(args.spec)
    if args.plan_command == "validate":
        constraints = plan.constraints.to_dict()
        print(
            f"ok: plan {plan.name!r}"
            f" (objective {plan.objective!r},"
            f" scenario {plan.scenario.name!r},"
            f" {plan.search.configurations} configuration(s) x"
            f" {len(plan.search.workers or plan.scenario.workers)} worker counts,"
            f" constraints {sorted(constraints) if constraints else 'none'})"
        )
        return 0

    if args.export:
        # Reject a bad export target before the (possibly expensive) run,
        # with the exact check Recommendation.export will apply after it.
        plan_export_format(args.export)
    runner = SweepRunner(
        mode=args.parallel,
        max_workers=args.jobs,
        cache_dir=args.cache_dir,
        use_cache=not args.no_cache,
        refine=getattr(args, "refine", False),
    )
    recommendation = run_plan(plan, runner=runner, backend=args.backend)
    if args.format == "json":
        print(json.dumps(recommendation.payload(), indent=2))
    else:
        print(recommendation.render())
        print(_stats_line(recommendation.stats))
    if args.export:
        target = recommendation.export(args.export)
        print(f"exported to {target}")
    return 0


def _run_serve_command(args: argparse.Namespace) -> int:
    from repro.service import serve, serve_sharded

    if args.workers < 1:
        print("error: --workers must be >= 1", file=sys.stderr)
        return 2
    if args.trace:
        from repro.obs import tracer

        # Started pre-fork in sharded mode: workers inherit the running
        # tracer across the fork, so every process records spans.
        tracer().start()
    service_options = dict(
        runner_mode=args.parallel,
        runner_jobs=args.jobs,
        cache_dir=args.cache_dir,
        use_cache=not args.no_cache,
        target_cache_size=args.target_cache,
        coalesce_window_s=args.coalesce_window,
        max_concurrency=args.max_concurrency,
        job_workers=args.job_workers,
        max_jobs=args.max_jobs,
        sync_grid_limit=args.sync_limit,
    )
    if args.workers > 1:
        return serve_sharded(
            host=args.host,
            port=args.port,
            workers=args.workers,
            control_dir=args.control_dir,
            drain_timeout_s=args.drain_timeout,
            **service_options,
        )
    return serve(host=args.host, port=args.port, **service_options)


def _run_client_command(args: argparse.Namespace) -> int:
    import os

    from repro.service import ServiceClient, canonical_json

    url = args.url or os.environ.get("REPRO_SERVICE_URL") or "http://127.0.0.1:8765"
    client = ServiceClient(url, timeout_s=args.timeout)
    command = args.client_command
    if command == "health":
        answer = client.health()
    elif command == "specs":
        answer = client.specs()
    elif command == "hardware":
        answer = client.hardware()
    elif command == "evaluate":
        answer = client.evaluate(args.spec, workers=args.workers, backend=args.backend)
    elif command == "sweep":
        answer = client.sweep(
            args.spec,
            workers=args.workers,
            backend=args.backend,
            mode=args.mode,
            wait=not args.no_wait,
        )
    elif command == "plan":
        answer = client.plan(
            args.spec, backend=args.backend, mode=args.mode, wait=not args.no_wait
        )
    elif command == "calibrate":
        features = None
        if args.features:
            features = [name.strip() for name in args.features.split(",") if name.strip()]
        answer = client.calibrate(
            args.spec, workers=args.workers, source=args.source, features=features
        )
    else:  # job
        answer = client.wait_job(args.job_id) if args.wait else client.job(args.job_id)
    print(canonical_json(answer), end="")
    return 0


def _run_hardware_command(args: argparse.Namespace) -> int:
    from repro.hardware import catalog_rows

    # args.hardware_command is always "list" today; argparse rejects
    # anything else before we get here.
    print(render_table(catalog_rows(), float_format="{:.4g}"))
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    try:
        if args.command == "list":
            for experiment_id in experiment_ids():
                print(experiment_id)
            return 0
        if args.command == "run":
            try:
                result = run_experiment(args.experiment, quick=args.quick)
            except ExperimentError:
                # run_experiment is the single validator of experiment
                # ids; here we only reformat its unknown-id rejection
                # into a friendlier one-per-line listing.
                if args.experiment not in experiment_ids():
                    _print_unknown_experiment(args.experiment)
                    return 1
                raise
            print(result.render())
            return 0
        if args.command == "run-all":
            for result in run_all(quick=args.quick):
                print(result.render())
                print()
            return 0
        if args.command == "scenario":
            return _run_scenario_command(args)
        if args.command == "plan":
            return _run_plan_command(args)
        if args.command == "hardware":
            return _run_hardware_command(args)
        if args.command == "trace":
            return _run_trace_command(args)
        if args.command == "serve":
            return _run_serve_command(args)
        if args.command == "client":
            return _run_client_command(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    except BrokenPipeError:  # downstream closed early, e.g. `... | head`
        return 0
    raise AssertionError(f"unhandled command {args.command!r}")  # pragma: no cover


if __name__ == "__main__":
    sys.exit(main())
