"""Command-line entry point: list and run the paper's experiments.

Installed as ``repro-experiments``:

    repro-experiments list
    repro-experiments run figure2
    repro-experiments run-all --quick
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Sequence

from repro.core.errors import ReproError
from repro.experiments import experiment_ids, run_all, run_experiment


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument schema."""
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description=(
            "Reproduce the tables and figures of 'Modeling Scalability of"
            " Distributed Machine Learning' (Ulanov et al., ICDE 2017)."
        ),
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="list available experiment ids")

    run_parser = subparsers.add_parser("run", help="run one experiment")
    run_parser.add_argument("experiment", help="experiment id (see 'list')")
    run_parser.add_argument(
        "--quick", action="store_true", help="smaller grids/trials for a fast pass"
    )

    run_all_parser = subparsers.add_parser("run-all", help="run every experiment")
    run_all_parser.add_argument(
        "--quick", action="store_true", help="smaller grids/trials for a fast pass"
    )
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    try:
        if args.command == "list":
            for experiment_id in experiment_ids():
                print(experiment_id)
            return 0
        if args.command == "run":
            result = run_experiment(args.experiment, quick=args.quick)
            print(result.render())
            return 0
        if args.command == "run-all":
            for result in run_all(quick=args.quick):
                print(result.render())
                print()
            return 0
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    raise AssertionError(f"unhandled command {args.command!r}")  # pragma: no cover


if __name__ == "__main__":
    sys.exit(main())
