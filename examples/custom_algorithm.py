"""Model your own algorithm: distributed k-means under the framework.

The paper's framework is algorithm-independent: supply computation and
communication complexity terms, get a speedup curve.  Here we model
Lloyd's k-means (a MapReduce classic the paper's framework covers but
does not evaluate), calibrate it against measurements with the
calibration module (the paper's future-work "feedback loop"), and
compare it to the related-work baselines.

Run:  python examples/custom_algorithm.py
"""

import numpy as np

from repro.core import (
    BSPModel,
    CommunicationCost,
    ComputationCost,
    ErnestModel,
    SparksModel,
    TreeCommunication,
    compare_models,
    fit_time_family,
)
from repro.experiments.plotting import render_table
from repro.hardware import gigabit_ethernet, xeon_e3_1240

# Workload: 10M points, 64 dims, k = 100 clusters, one Lloyd iteration.
POINTS = 10_000_000
DIMS = 64
CLUSTERS = 100


def build_model() -> BSPModel:
    """Assignment step: n*k*d multiply-adds per point; centroid update:
    tree-reduce k*d partial sums (32-bit)."""
    node = xeon_e3_1240(precision="single")
    link = gigabit_ethernet()
    assignment_ops = float(POINTS) * CLUSTERS * DIMS
    centroid_bits = 32.0 * CLUSTERS * DIMS
    return BSPModel(
        computation=ComputationCost(assignment_ops, node.effective_flops),
        communication=CommunicationCost(TreeCommunication(link.bandwidth_bps), centroid_bits),
    )


def main() -> None:
    model = build_model()
    curve = model.grid(64)
    rows = [row for row in curve.rows() if row["workers"] in (1, 2, 4, 8, 16, 32, 64)]
    print("k-means, one Lloyd iteration (model):")
    print(render_table(rows))
    print(f"\noptimal workers <= 64: {curve.optimal_workers} "
          f"(communication is tiny: k*d centroids, not the dataset)")

    # --- the feedback loop: fit free parameters from noisy measurements ---
    rng = np.random.default_rng(0)
    grid = [1, 2, 4, 8, 16, 32, 64]
    observed = np.array([model.time(n) * (1 + rng.normal(0, 0.04)) for n in grid])

    def family(workers, params):
        compute, comm = params
        return compute / workers + comm * np.log2(np.maximum(workers, 1.0)) + 1e-12

    fit = fit_time_family(family, (1.0, 0.01), grid, observed)
    print(f"\ncalibrated from 7 noisy runs: compute={fit.params[0]:.1f}s "
          f"comm={fit.params[1]:.4f}s/round, MAPE {fit.mape_pct:.1f}%")

    # --- baselines from related work on the same measurements ---
    candidates = {
        "this paper (analytic)": model,
        "calibrated (NNLS feedback)": fit.model,
        "Sparks et al. (linear comm)": SparksModel.fit(grid, observed),
        "Ernest (Venkataraman et al.)": ErnestModel.fit(grid, observed),
    }
    print("\nmodel ranking by MAPE against the measurements:")
    for name, error in compare_models(candidates, grid, observed):
        print(f"  {error:6.2f}%  {name}")


if __name__ == "__main__":
    main()
