"""Capacity planning: the two questions from the paper's introduction.

  (1) Strong scaling — "Given a workload, how many more machines are
      needed to decrease the run time by a certain amount?"
  (2) Weak scaling — "Given an increasing workload, how many more
      machines to add to keep the run time the same?"

We plan a VGG-16 training deployment on Xeon nodes, comparing 1 GbE and
10 GbE interconnects (the what-if the analytic model makes free).

Run:  python examples/capacity_planning.py
"""

from repro.core.scaling import (
    workers_for_speedup,
    workers_for_time,
    workers_to_absorb_growth,
)
from repro.hardware import gigabit_ethernet, ten_gigabit_ethernet, xeon_e3_1240
from repro.models import gd_model_for
from repro.nn.architectures import vgg16


def main() -> None:
    node = xeon_e3_1240(precision="single")
    architecture = vgg16()
    batch = 4096

    for link in (gigabit_ethernet(), ten_gigabit_ethernet()):
        model = gd_model_for(architecture, node, link, batch_size=batch)
        single_node_minutes = model.time(1) / 60

        print(f"--- {architecture.name} on {node.name}, {link.name} ---")
        print(f"one iteration on one node: {single_node_minutes:.1f} min")

        # Question 1a: how many machines to go 4x faster?
        four_x = workers_for_speedup(model, target_speedup=4.0, max_workers=256)
        print(f"machines for a 4x speedup : {four_x}")

        # Question 1b: how many machines to get below 10 minutes?
        ten_minutes = workers_for_time(model, target_seconds=600.0, max_workers=256)
        print(f"machines for <10 min      : {ten_minutes}")

        # The honest ceiling: past this count, more machines hurt.
        optimum = model.optimal_workers(256)
        print(f"optimal cluster size      : {optimum} "
              f"(peak speedup {model.speedup(optimum):.1f}x)")

        # Question 2: the dataset doubles; keep iteration time flat.
        def model_for_size(size: float):
            return gd_model_for(architecture, node, link, batch_size=size)

        grown = workers_to_absorb_growth(
            model_for_size,
            current_size=batch,
            current_workers=8,
            growth_factor=2.0,
            max_workers=256,
        )
        print(f"workers to absorb 2x data (from 8): {grown}")
        print()


if __name__ == "__main__":
    main()
