"""Quickstart: how many Spark workers for the paper's MNIST network?

This is the paper's headline use case in five steps: build the analytic
model from hardware specs alone (no profiling), look at the speedup
curve, and read off the optimal cluster size.

Run:  python examples/quickstart.py
"""

from repro.experiments.plotting import render_chart, render_table
from repro.models import spark_mnist_figure2_model


def main() -> None:
    # 1. The model is built purely from the hardware/model constants the
    #    paper quotes: W = 12e6 64-bit parameters, batch 60000, a Xeon
    #    E3-1240 at 80% of its double-precision peak, 1 Gbit/s Ethernet.
    model = spark_mnist_figure2_model()

    # 2. Evaluate the speedup on the cluster sizes you could rent.
    curve = model.grid(max_workers=13)

    # 3. Tabulate: time, speedup and efficiency per worker count.
    print(render_table(curve.rows()))
    print()

    # 4. Plot the curve (the paper's Figure 2, model line).
    points = [(n, s) for n, s in zip(curve.workers, curve.speedups)]
    print(render_chart({"model speedup": points}))
    print()

    # 5. The answer the practitioner came for:
    print(f"optimal workers : {curve.optimal_workers}")
    print(f"peak speedup    : {curve.peak_speedup:.2f}x")
    print(f"scalable        : {curve.is_scalable}")
    print()
    print(
        "Communication overhead caps the speedup near "
        f"{curve.peak_speedup:.1f}x — adding machines past "
        f"{curve.optimal_workers} workers buys nothing."
    )


if __name__ == "__main__":
    main()
