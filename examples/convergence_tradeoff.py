"""The parallelization-convergence trade-off, measured then modelled.

The paper's conclusion: "gradient descent parallelization techniques pay
for parallelism with algorithmically slower convergence".  This example
demonstrates the pipeline the future-work section sketches:

1. measure it — real mini-batch SGD on a noisy regression task, counting
   iterations to a target loss at several batch sizes (small batches are
   slowed by gradient noise; large batches saturate);
2. calibrate it — fit the critical-batch rule to those runs;
3. combine it with the Figure 3 throughput model to get the honest
   metric: time-to-accuracy speedup.

Run:  python examples/convergence_tradeoff.py
"""

import numpy as np

from repro.experiments.plotting import render_chart, render_table
from repro.models.convergence import (
    CriticalBatchRule,
    TimeToAccuracyModel,
    fit_critical_batch,
    measure_iterations_to_target,
)
from repro.models.deep_learning import chen_inception_figure3_model
from repro.nn.data import Dataset
from repro.nn.layers import Affine
from repro.nn.losses import MeanSquaredError
from repro.nn.network import Sequential


def noisy_regression(samples: int = 2048, features: int = 16, noise: float = 0.5) -> Dataset:
    """y = X w* + eps: the optimal loss is noise^2; gradient noise makes
    small-batch SGD hover above it."""
    rng = np.random.default_rng(0)
    inputs = rng.normal(size=(samples, features))
    true_weights = rng.normal(size=(features, 1))
    targets = inputs @ true_weights + rng.normal(0.0, noise, size=(samples, 1))
    return Dataset(inputs=inputs, targets=targets, labels=np.zeros(samples, dtype=int))


def main() -> None:
    # 1. Measure: iterations-to-target vs batch size, real training.
    data = noisy_regression()
    loss = MeanSquaredError()

    def factory() -> Sequential:
        return Sequential([Affine(16, 1, rng=np.random.default_rng(7), use_bias=False)])

    batch_sizes = [4, 8, 16, 32, 64, 128]
    measured = measure_iterations_to_target(
        factory, data, loss, batch_sizes, target_loss=0.285,
        learning_rate=0.05, max_steps=30000, seed=1,
    )
    print(render_table([{"batch_size": b, "iterations_to_target": measured[b]}
                        for b in batch_sizes]))

    # 2. Calibrate the critical-batch rule from those runs.
    rule = fit_critical_batch(
        np.array(batch_sizes, dtype=float),
        np.array([measured[b] for b in batch_sizes], dtype=float),
    )
    print(f"\nfitted: iterations_floor = {rule.iterations_floor:.0f}, "
          f"critical batch = {rule.critical_batch:.1f}")

    # 3. Combine with the Figure 3 throughput model.  The Inception
    #    workload's own critical batch is of course larger; what carries
    #    over is the *shape*, so we scale B_crit to ImageNet-like values.
    sync = chen_inception_figure3_model()
    tta = TimeToAccuracyModel(
        superstep_time=sync.superstep_time,
        batch_for_workers=lambda n: 128.0 * n,
        rule=CriticalBatchRule(iterations_floor=10_000, critical_batch=4096),
    )
    grid = (1, 2, 4, 8, 16, 32, 64, 128, 256)
    print()
    print(render_chart(
        {
            "throughput speedup": [(n, tta.throughput_speedup(n)) for n in grid],
            "time-to-accuracy speedup": [(n, tta.speedup(n)) for n in grid],
        },
        x_label="workers",
    ))
    print("\nThe throughput curve keeps climbing; time-to-accuracy saturates"
          " once the effective batch passes the critical batch — the"
          " trade-off the paper's future work calls out.")


if __name__ == "__main__":
    main()
