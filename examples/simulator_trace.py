"""Inside the testbed: trace one BSP superstep on the simulated cluster.

Shows the discrete-event substrate the "experimental" curves come from:
per-transfer link occupancy, per-task compute records, and a comparison
of the collective schedules (linear vs tree vs torrent vs two-wave vs
ring) on the same gradient payload.

Run:  python examples/simulator_trace.py
"""

from repro.experiments.plotting import render_table
from repro.hardware import gigabit_ethernet, xeon_e3_1240
from repro.simulate import (
    BSPEngine,
    LogNormalJitter,
    Network,
    SuperstepPlan,
    Trace,
    binomial_broadcast,
    linear_gather,
    ring_allreduce,
    tree_reduce,
    two_wave_aggregate,
)


def trace_superstep() -> None:
    """One Spark-like superstep, fully traced."""
    engine = BSPEngine(
        node=xeon_e3_1240(),
        link=gigabit_ethernet(),
        workers=4,
        jitter=LogNormalJitter(0.05),
        seed=42,
    )
    plan = SuperstepPlan(
        operations_per_worker=2e10,
        broadcast_bits=64 * 12e6,
        aggregate_bits=64 * 12e6,
        aggregation="two_wave",
    )
    report = engine.run(plan, iterations=1)
    print(f"superstep took {report.iteration_seconds[0]:.3f} s "
          f"(compute span {report.compute_spans[0]:.3f} s)")
    print("\ntransfers (src -> dst, start..end):")
    for record in report.trace.transfers:
        print(
            f"  {record.source} -> {record.destination}  "
            f"{record.start:7.3f} .. {record.end:7.3f} s  "
            f"({record.bits / 8e6:.0f} MB, {record.tag})"
        )
    print("\ncompute tasks:")
    for record in report.trace.computes:
        print(f"  node {record.node}: {record.start:7.3f} .. {record.end:7.3f} s")
    print()


def compare_collectives() -> None:
    """The same 96 MB gradient, five collective schedules, 16 nodes."""
    bits = 64 * 12e6
    nodes = 16
    rows = []

    def fresh():
        return Network(gigabit_ethernet(), nodes + 1, trace=Trace())

    ready = {node: 0.0 for node in range(1, nodes + 1)}

    network = fresh()
    rows.append({"collective": "linear gather",
                 "seconds": linear_gather(network, ready, sink=0, bits=bits)})
    network = fresh()
    _, finish = tree_reduce(network, ready, bits=bits)
    rows.append({"collective": "tree reduce", "seconds": finish})
    network = fresh()
    holds = binomial_broadcast(network, 0, 0.0, list(ready), bits=bits)
    rows.append({"collective": "torrent broadcast", "seconds": max(holds.values())})
    network = fresh()
    rows.append({"collective": "two-wave aggregate",
                 "seconds": two_wave_aggregate(network, ready, driver=0, bits=bits)})
    network = fresh()
    finishes = ring_allreduce(network, ready, bits=bits)
    rows.append({"collective": "ring all-reduce", "seconds": max(finishes.values())})

    print(render_table(rows))
    print("\nRing all-reduce moves ~2 payloads regardless of n; the linear"
          " gather pays one payload per worker — the contrast behind the"
          " paper's critique of linear-only communication models.")


def main() -> None:
    trace_superstep()
    compare_collectives()


if __name__ == "__main__":
    main()
