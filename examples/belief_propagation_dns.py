"""Figure 4 end to end: loopy BP on a DNS-like heavy-tailed graph.

Three parts:

1. run *real* loopy belief propagation on a 16K-vertex DNS-like MRF
   (partitioned execution, identical beliefs to sequential BP);
2. reproduce the paper's speedup study: Monte-Carlo model vs a
   simulated 80-core shared-memory run;
3. the ablation the model enables: what if we partitioned by degree
   (greedy balance) instead of randomly?

Run:  python examples/belief_propagation_dns.py
"""

from repro.core.metrics import mape
from repro.distributed.graph_inference import graphlab_dl980, measure_bp_iterations
from repro.experiments.plotting import render_chart, render_table
from repro.graph.generators import dns_like
from repro.graph.partition import (
    degree_loads,
    greedy_balanced_partition,
    random_partition,
)
from repro.models.belief_propagation import BeliefPropagationModel
from repro.mrf.model import ising_mrf
from repro.mrf.parallel import PartitionedBP

GRID = (1, 2, 4, 8, 16, 32, 48, 64, 80)


def run_real_bp(workload) -> None:
    """Actual message passing on the materialised 16K graph."""
    mrf = ising_mrf(workload.graph, coupling=0.4, field=0.3, seed=7)
    partition = random_partition(workload.graph.vertex_count, 16, seed=1)
    outcome = PartitionedBP(mrf, partition, damping=0.3).run(max_iterations=30)
    print("real loopy BP on the 16K-vertex DNS-like MRF (16 workers):")
    print(f"  converged: {outcome.result.converged} in {outcome.result.iterations} iterations")
    print(f"  message updates: {outcome.result.message_updates:,}")
    print(f"  work balance (mean/max): {outcome.profile.balance:.2f}")
    print(f"  replication factor r: {outcome.profile.replication:.2f}")
    print()


def speedup_study(workload) -> None:
    """The paper's model-vs-experiment comparison."""
    machine = graphlab_dl980()
    model = BeliefPropagationModel.from_source(
        workload.degree_sequence, GRID, flops=machine.core_flops, trials=5, seed=0
    )
    measured = measure_bp_iterations(workload.graph, GRID, machine=machine, seed=100)
    model_s = [model.speedup(n) for n in GRID]
    exp_s = [measured.time(1) / measured.time(n) for n in GRID]
    print(
        render_chart(
            {
                "model (Monte Carlo)": list(zip(GRID, model_s)),
                "simulated experiment": list(zip(GRID, exp_s)),
            },
            x_label="cores",
        )
    )
    print()
    print(f"speedup MAPE: {mape(exp_s, model_s):.1f}% (paper: 23.5% at this scale)")
    print()


def partitioner_ablation(workload) -> None:
    """Random vs greedy-balanced assignment: the imbalance that caps Fig 4."""
    degrees = workload.degree_sequence.degrees
    rows = []
    for workers in (8, 32, 80):
        random_loads = degree_loads(
            random_partition(degrees.size, workers, seed=3), degrees
        )
        greedy_loads = degree_loads(greedy_balanced_partition(degrees, workers), degrees)
        rows.append(
            {
                "workers": workers,
                "random_max_load": float(random_loads.max()),
                "greedy_max_load": float(greedy_loads.max()),
                "ideal_load": float(degrees.sum() / workers),
            }
        )
    print(render_table(rows))
    print(
        "\nGreedy degree balancing removes nearly all the imbalance the"
        " random-assignment model predicts — the feedback loop the paper's"
        " conclusion asks for would catch this headroom."
    )


def main() -> None:
    workload = dns_like("16k", seed=0)
    run_real_bp(workload)
    speedup_study(workload)
    partitioner_ablation(workload)


if __name__ == "__main__":
    main()
