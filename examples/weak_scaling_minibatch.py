"""Figure 3 end to end: weak scaling of synchronous mini-batch SGD.

Every worker holds a fixed batch of 128 images of Inception v3 work;
adding workers grows the effective batch.  The paper's logarithmic
communication model predicts *infinite* weak scaling; a linear model
saturates.  We reproduce the figure and then ask the what-if the paper
suggests the framework is for: what changes on a 10 GbE fabric?

Run:  python examples/weak_scaling_minibatch.py
"""

from repro.core.metrics import mape
from repro.distributed.tensorflow_like import measure_inception_per_instance
from repro.experiments.plotting import render_chart, render_table
from repro.models import (
    chen_inception_figure3_model,
    chen_inception_linear_comm_model,
)
from repro.models.gradient_descent import WeakScalingSGDModel

GRID = (25, 50, 100, 200, 400)
BASELINE = 50


def main() -> None:
    log_model = chen_inception_figure3_model()
    linear_model = chen_inception_linear_comm_model()
    measured = measure_inception_per_instance(GRID, iterations=3, seed=0)

    rows = []
    for n in GRID:
        rows.append(
            {
                "workers": n,
                "log_model": log_model.time(BASELINE) / log_model.time(n),
                "experiment": measured.time(BASELINE) / measured.time(n),
                "linear_model": linear_model.time(BASELINE) / linear_model.time(n),
            }
        )
    print(render_table(rows))
    print()

    on_grid = [n for n in GRID if n <= 200]
    model_s = [log_model.time(BASELINE) / log_model.time(n) for n in on_grid]
    exp_s = [measured.time(BASELINE) / measured.time(n) for n in on_grid]
    print(f"speedup MAPE vs simulated experiment: {mape(exp_s, model_s):.1f}% (paper: 1.2%)")
    print()

    # What-if: the same cluster on a 10x faster fabric.
    fast = WeakScalingSGDModel(
        operations_per_sample=log_model.operations_per_sample,
        batch_size=log_model.batch_size,
        flops=log_model.flops,
        parameters=log_model.parameters,
        bandwidth_bps=10e9,
        bits_per_parameter=log_model.bits_per_parameter,
    )
    print(
        render_chart(
            {
                "1 GbE": [(n, log_model.time(BASELINE) / log_model.time(n)) for n in GRID],
                "10 GbE": [(n, fast.time(BASELINE) / fast.time(n)) for n in GRID],
            },
            x_label="workers",
            y_label="speedup vs 50",
        )
    )
    print()
    print(
        "At 400 workers the 10 GbE fabric gets "
        f"{(fast.time(BASELINE) / fast.time(400)) / (log_model.time(BASELINE) / log_model.time(400)):.2f}x"
        " the per-instance speedup of 1 GbE: gradient exchange is the bottleneck,"
        " exactly the communication wall Keuper & Pfreundt observed."
    )


if __name__ == "__main__":
    main()
