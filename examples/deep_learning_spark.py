"""Figure 2 end to end: analytic model vs the simulated Spark cluster.

Reproduces the paper's central validation: the smooth model curve, the
noisy "experimental" markers from the discrete-event cluster simulator
(standing in for the physical Xeon/1GbE testbed), and the MAPE between
them.  Also demonstrates the *functional* side: real data-parallel
gradient descent whose combined gradient equals the single-node one.

Run:  python examples/deep_learning_spark.py
"""

import numpy as np

from repro.core.metrics import mape
from repro.distributed.gradient_descent import data_parallel_train_step
from repro.distributed.spark_like import measure_fc_iterations
from repro.experiments.plotting import render_chart
from repro.models import spark_mnist_figure2_model
from repro.nn.data import gaussian_blobs
from repro.nn.layers import Affine, Sigmoid
from repro.nn.losses import SoftmaxCrossEntropy
from repro.nn.network import Sequential


def timing_study() -> None:
    """The Figure 2 comparison."""
    grid = list(range(1, 14))
    model = spark_mnist_figure2_model()
    measured = measure_fc_iterations(grid, iterations=5, seed=0)

    model_speedups = [model.speedup(n) for n in grid]
    experiment_speedups = [measured.time(1) / measured.time(n) for n in grid]

    print(
        render_chart(
            {
                "model": list(zip(grid, model_speedups)),
                "simulated experiment": list(zip(grid, experiment_speedups)),
            }
        )
    )
    print()
    print(f"model optimal workers: {model.optimal_workers(13)} (paper: 9)")
    print(f"speedup MAPE: {mape(experiment_speedups, model_speedups):.1f}% (paper: 13.7%)")


def functional_study() -> None:
    """Mini data-parallel training run: the math behind the model."""
    data = gaussian_blobs(samples=256, features=10, classes=4, seed=0)
    rng = np.random.default_rng(1)
    network = Sequential([Affine(10, 32, rng=rng), Sigmoid(), Affine(32, 4, rng=rng)])
    loss = SoftmaxCrossEntropy()
    print("\ndata-parallel batch GD on 4 logical workers:")
    for step in range(10):
        value = data_parallel_train_step(network, data, loss, workers=4, learning_rate=1.0)
        if step % 3 == 0:
            print(f"  step {step}: loss {value:.4f}")
    print("  (each step's combined gradient is exactly the full-batch gradient)")


def main() -> None:
    timing_study()
    functional_study()


if __name__ == "__main__":
    main()
