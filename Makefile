# Development targets.  The repository is pure python with a src/ layout;
# everything runs against the in-tree sources via PYTHONPATH.

PYTHON ?= python
export PYTHONPATH := src

# Coverage floor CI enforces on src/repro (see `make test-cov`).
COVERAGE_FLOOR ?= 85

.PHONY: test test-fast test-cov test-quick lint docs-check bench-sweep bench-sim bench-plan bench-serve bench-net bench-store bench-obs check clean

## Run the full test suite (tier-1 verification).
test:
	$(PYTHON) -m pytest -x -q

## The tier-1 loop without the slow markers (process-pool hammers,
## multi-process byte-identity sweeps) — the quick inner-loop signal.
test-fast:
	$(PYTHON) -m pytest -x -q -m "not slow"

## Tier-1 under coverage, enforcing the CI floor on src/repro.
## Requires the `coverage` package (CI installs it; the offline dev
## image may not ship it, in which case this target is CI-only).
test-cov:
	$(PYTHON) -m coverage run --source=src/repro -m pytest -q
	$(PYTHON) -m coverage report --fail-under=$(COVERAGE_FLOOR)

## Fast signal: stop at the first failure, quietest output.
test-quick:
	$(PYTHON) -m pytest -x -q tests/test_scenarios.py tests/test_plotting_cli.py tests/test_experiments.py

## Byte-compile every source tree (catches syntax/IO rot without
## third-party linters, which the offline image does not ship).
lint:
	$(PYTHON) -m compileall -q src tests tools benchmarks examples

## Execute every fenced python block in the documentation.
docs-check:
	$(PYTHON) tools/check_docs.py README.md docs/architecture.md docs/scenarios.md docs/cost-algebra.md docs/backends.md docs/planner.md docs/service.md docs/scheduler.md docs/network.md docs/store.md docs/observability.md

## The vectorized-sweep acceptance bench (bench_*.py is not collected
## by 'make test'; this target runs it explicitly).
bench-sweep:
	$(PYTHON) -m pytest -q benchmarks/bench_vectorized_sweep.py

## The simulated-sweep acceptance bench: chunked process-pool vs serial
## evaluation of a simulated-backend sweep through the task-graph
## scheduler, written to BENCH_sim.json.  Fails on a payload mismatch
## regardless of timings — CI uses it as the payload-identity gate.
bench-sim:
	$(PYTHON) tools/bench_sim_to_json.py

## The capacity-planner acceptance bench: serial vs chunked process-pool
## plan evaluation (byte-identical recommendations, including the Pareto
## frontier), written to BENCH_plan.json.  Also a CI payload-identity gate.
bench-plan:
	$(PYTHON) tools/bench_plan_to_json.py

## The evaluation-service acceptance bench: cold vs cache-hit latency
## and coalesced throughput over real HTTP, written to BENCH_serve.json.
bench-serve:
	$(PYTHON) tools/bench_serve_to_json.py

## The network-backend acceptance bench: serial vs process network
## sweeps (payload-identical) plus the fat-tree-vs-single-switch
## evaluation overhead ratio, written to BENCH_net.json.
bench-net:
	$(PYTHON) tools/bench_net_to_json.py

## The columnar-store acceptance bench: cached-hit latency vs grid size,
## delta-sweep cost vs full recompute (byte-identical payloads) and
## progressive refinement coverage, written to BENCH_store.json.
bench-store:
	$(PYTHON) tools/bench_store_to_json.py

## The telemetry-overhead acceptance bench: the sweep hot path with
## metrics hard-off (baseline), metrics on (the default), and metrics +
## tracing on, written to BENCH_obs.json.  Enforces the overhead floors
## (<= 2% always-on, <= 10% traced).
bench-obs:
	$(PYTHON) tools/bench_obs_to_json.py

## Everything CI would run.
check: lint test docs-check bench-sweep bench-sim bench-plan bench-serve bench-net bench-store bench-obs

clean:
	find . -name '__pycache__' -type d -exec rm -rf {} +
	rm -rf .pytest_cache
